//! Label-preserving embeddings of Cayley guests (star graphs, transposition
//! networks, bubble-sort graphs) into super Cayley hosts — Theorems 1, 2, 3,
//! 6 and 7.
//!
//! Guest and host share the node set `S_k`; the node map is the identity on
//! labels (load 1, expansion 1), and each guest link expands into the host
//! generator sequence served by the host's compiled
//! [`RoutePlan`](scg_core::RoutePlan) (shared through the process-wide
//! topology cache, like the graphs and rank tables).

use scg_core::{materialize, route_plan, CayleyNetwork, Generator, SuperCayleyGraph};
use scg_graph::NodeId;

use crate::embedding::Embedding;
use crate::error::EmbedError;
use crate::ir::{EmbeddingIr, IrBuilder};

/// An embedding of a Cayley guest into a super Cayley host, retaining which
/// guest generator (dimension) each guest edge realizes — needed for the
/// paper's per-dimension congestion claims.
#[derive(Debug, Clone)]
pub struct CayleyEmbedding {
    embedding: Embedding,
    edge_generator: Vec<usize>,
    guest_generators: Vec<Generator>,
}

impl CayleyEmbedding {
    /// Embeds `guest` into `host` with the identity node map, expanding each
    /// guest link by the Theorem 1–3 (star links) or Theorem 6–7
    /// (transposition links) generator factorizations.
    ///
    /// `cap` bounds the materialized node count (`k!`).
    ///
    /// # Errors
    ///
    /// * [`EmbedError::Core`] — host cannot emulate (insertion-only
    ///   nucleus), parameters invalid, or `k! > cap`;
    /// * [`EmbedError::Unsupported`] — a guest generator is neither a star
    ///   transposition nor an exchange.
    pub fn build(
        guest: &impl CayleyNetwork,
        host: &SuperCayleyGraph,
        cap: u64,
    ) -> Result<Self, EmbedError> {
        let k = guest.degree_k();
        if k != host.degree_k() {
            return Err(EmbedError::Unsupported {
                reason: format!(
                    "guest degree {k} differs from host degree {}",
                    host.degree_k()
                ),
            });
        }
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::build_timer(&guest.name());
        let plan = route_plan(host)?;
        // Each guest generator's expansion is a precompiled arena slice.
        let guest_generators: Vec<Generator> = guest.generators().to_vec();
        let mut expansions: Vec<&[Generator]> = Vec::with_capacity(guest_generators.len());
        for g in &guest_generators {
            let seq = match *g {
                Generator::Transposition { i } => plan.star_link(i as usize)?,
                Generator::Exchange { i, j } => plan.tn_link(i as usize, j as usize)?,
                other => {
                    return Err(EmbedError::Unsupported {
                        reason: format!("cannot expand guest generator {other}"),
                    })
                }
            };
            expansions.push(seq);
        }
        // Both endpoints come from the shared topology cache: the graphs and
        // rank tables are built once per network and shared across layers.
        let guest_mat = materialize(guest, cap)?;
        let host_mat = materialize(host, cap)?;
        let guest_graph = guest_mat.graph();
        let node_map: Vec<NodeId> = (0..guest_graph.num_nodes() as NodeId).collect();

        // Resolve each expansion to host generator *indices* so walking a
        // path is pure table lookups — no permutation arithmetic per edge.
        let host_gens = host.generators();
        let expansion_indices: Vec<Vec<usize>> = expansions
            .iter()
            .map(|seq| {
                seq.iter()
                    .map(|hg| {
                        host_gens
                            .iter()
                            .position(|g| g == hg)
                            .expect("expansion uses host generators") // scg-allow(SCG001): expansions are validated against the host generator set at construction
                    })
                    .collect()
            })
            .collect();

        // Guest CSR edges are sorted by target rank, not by generator; for
        // each edge recover which generator produced it (distinct generators
        // have distinct actions after dedup, so the target determines it).
        // Each expansion is walked hop by hop straight into the shared IR
        // arena — no per-edge path vectors.
        let mut builder = IrBuilder::new(guest_graph.clone(), host_mat.graph().clone());
        let mut edge_generator = Vec::with_capacity(guest_graph.num_edges());
        for u in 0..guest_graph.num_nodes() as NodeId {
            for &v in guest_graph.out_neighbors(u) {
                let gi = (0..guest_generators.len())
                    .position(|g| guest_mat.neighbor_id(u, g) == v)
                    .expect("every guest edge comes from a generator"); // scg-allow(SCG001): guest CSR edges are produced by the materialized generator actions
                builder.begin_path(u);
                let mut cur = u;
                for &hgi in &expansion_indices[gi] {
                    cur = host_mat.neighbor_id(cur, hgi);
                    builder.push_hop(cur);
                }
                builder.end_path();
                edge_generator.push(gi);
            }
        }
        let embedding = Embedding::from(builder.node_map(node_map).finish()?);
        #[cfg(feature = "obs")]
        crate::obs_hooks::build_done(&guest.name(), embedding.dilation());
        Ok(CayleyEmbedding {
            embedding,
            edge_generator,
            guest_generators,
        })
    }

    /// The validated embedding.
    #[must_use]
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The underlying arena-backed IR.
    #[must_use]
    pub fn ir(&self) -> &EmbeddingIr {
        self.embedding.ir()
    }

    /// Consumes `self`, returning the inner [`Embedding`].
    #[must_use]
    pub fn into_embedding(self) -> Embedding {
        self.embedding
    }

    /// The guest generator list (dimension order).
    #[must_use]
    pub fn guest_generators(&self) -> &[Generator] {
        &self.guest_generators
    }

    /// Congestion counting only the guest edges of generator index `gi`
    /// (the paper's "congestion for embedding all the links of a certain
    /// dimension").
    #[must_use]
    pub fn congestion_of_dimension(&self, gi: usize) -> usize {
        self.embedding
            .congestion_filtered(|e| self.edge_generator[e] == gi)
    }

    /// Worst per-dimension congestion over all guest generators.
    #[must_use]
    pub fn max_dimension_congestion(&self) -> usize {
        (0..self.guest_generators.len())
            .map(|gi| self.congestion_of_dimension(gi))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::{StarGraph, TranspositionNetwork};

    const CAP: u64 = 50_000;

    #[test]
    fn star_into_macro_star_matches_theorem_1() {
        let star = StarGraph::new(7).unwrap();
        let host = SuperCayleyGraph::macro_star(3, 2).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        let e = ce.embedding();
        assert_eq!(e.load(), 1);
        assert!((e.expansion() - 1.0).abs() < 1e-12);
        assert_eq!(e.dilation(), 3);
        // Congestion claim: max(2n, l) = max(4, 3) = 4.
        assert_eq!(e.congestion(), 4);
        // Per-dimension congestion: 1 for j <= n+1, 2 beyond.
        for (gi, g) in ce.guest_generators().iter().enumerate() {
            let Generator::Transposition { i } = g else {
                unreachable!()
            };
            let expected = if (*i as usize) <= 3 { 1 } else { 2 };
            assert_eq!(ce.congestion_of_dimension(gi), expected, "dim {i}");
        }
    }

    #[test]
    fn star_into_complete_rs_matches_theorem_1() {
        let star = StarGraph::new(7).unwrap();
        let host = SuperCayleyGraph::complete_rotation_star(3, 2).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        assert_eq!(ce.embedding().dilation(), 3);
        assert_eq!(ce.embedding().congestion(), 4); // max(2n, l)
        assert!(ce.max_dimension_congestion() <= 2);
    }

    #[test]
    fn star_into_is_matches_theorem_2() {
        let star = StarGraph::new(6).unwrap();
        let host = SuperCayleyGraph::insertion_selection(6).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        assert_eq!(ce.embedding().dilation(), 2);
        // Paper: congestion 1 under the directed-multigraph convention where
        // I_2 and I_2^{-1} are parallel links; our simple-graph view merges
        // them, so the I_2 link carries both and congestion measures 2.
        assert!(ce.embedding().congestion() <= 2);
        assert!(ce.embedding().congestion_filtered(|_| true) >= 1);
    }

    #[test]
    fn star_into_mis_matches_theorem_3() {
        let star = StarGraph::new(7).unwrap();
        let host = SuperCayleyGraph::macro_is(3, 2).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        assert_eq!(ce.embedding().dilation(), 4);
        assert_eq!(ce.embedding().load(), 1);
    }

    #[test]
    fn tn_into_macro_star_matches_theorem_6() {
        let tn = TranspositionNetwork::new(5).unwrap();
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let ce = CayleyEmbedding::build(&tn, &host, CAP).unwrap();
        let e = ce.embedding();
        assert_eq!(e.load(), 1);
        assert!((e.expansion() - 1.0).abs() < 1e-12);
        assert!(e.dilation() <= 5, "l = 2 dilation must be <= 5");
        let host3 = SuperCayleyGraph::macro_star(3, 2).unwrap();
        let tn7 = TranspositionNetwork::new(7).unwrap();
        let ce3 = CayleyEmbedding::build(&tn7, &host3, CAP).unwrap();
        assert!(
            ce3.embedding().dilation() <= 7,
            "l >= 3 dilation must be <= 7"
        );
        assert_eq!(ce3.embedding().dilation(), 7); // tight at case 6
    }

    #[test]
    fn tn_into_is_matches_theorem_7() {
        let tn = TranspositionNetwork::new(5).unwrap();
        let host = SuperCayleyGraph::insertion_selection(5).unwrap();
        let ce = CayleyEmbedding::build(&tn, &host, CAP).unwrap();
        assert!(ce.embedding().dilation() <= 6);
    }

    #[test]
    fn bubble_sort_embeds_as_tn_subgraph() {
        let bs = scg_core::BubbleSortGraph::new(5).unwrap();
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let ce = CayleyEmbedding::build(&bs, &host, CAP).unwrap();
        assert!(ce.embedding().dilation() <= 5);
        assert_eq!(ce.embedding().load(), 1);
    }

    #[test]
    fn mismatched_degrees_rejected() {
        let star = StarGraph::new(6).unwrap();
        let host = SuperCayleyGraph::macro_star(3, 2).unwrap(); // k = 7
        assert!(matches!(
            CayleyEmbedding::build(&star, &host, CAP),
            Err(EmbedError::Unsupported { .. })
        ));
    }

    #[test]
    fn rotator_host_embeds_with_insertion_cycles() {
        // Beyond the paper's theorems: star → MR via T_x = I_{x-1}^{x-2}∘I_x.
        let star = StarGraph::new(5).unwrap();
        let host = SuperCayleyGraph::macro_rotator(2, 2).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        // Dilation 2·1 + n = 4 for MR(2,2).
        assert_eq!(ce.embedding().dilation(), 4);
        assert_eq!(ce.embedding().load(), 1);
    }
}
