//! The arena-backed embedding IR: one representation for every guest
//! topology.
//!
//! An [`EmbeddingIr`] maps a *program* graph (the guest) into a *target*
//! graph (the host): each program node gets a target node, and each
//! program edge gets a *hyperpath* — a walk through target nodes — stored
//! as a range into one shared flat arena. The two sides are addressed by
//! typed `u32` handles ([`PNode`]/[`PEdge`] program side, [`TNode`]/
//! [`TEdge`] target side), so an embedding is three flat vectors rather
//! than a `Vec` of per-edge `Vec`s; building, auditing, composing and
//! re-embedding all walk contiguous memory.
//!
//! Construction always validates (arena offsets well-formed, hyperpath
//! endpoints match the node map, consecutive hops target-adjacent), so an
//! `EmbeddingIr` is a *certificate*: the [`EmbedAudit`] metrics it reports
//! are facts about a checked object. The legacy
//! [`Embedding`](crate::Embedding) type is a thin compatibility view over
//! this IR.
//!
//! Fault awareness comes for free from the flat layout:
//! [`EmbeddingIr::reembed`] copies hyperpaths that survive a fault set
//! verbatim and re-routes only the crossing ones through a caller-supplied
//! router (survivor-graph BFS by default, the plan-cache detour search via
//! [`reembed_scg`]).
//!
//! The shape follows the starlight router's program/target embedding
//! arenas (see DESIGN.md §2); the paper mappings are Theorems 1–3/6–7 and
//! Corollaries 4–6.

use std::sync::Arc;

use scg_core::{scg_route_faulty_ids, Materialized, SuperCayleyGraph};
use scg_graph::{DenseGraph, FaultSet, NodeId, SurvivorView};
use scg_perm::cast::len_u32;

use crate::error::EmbedError;

/// A program-side (guest) node handle: an index into the guest graph's
/// node range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PNode(u32);

/// A program-side (guest) edge handle: an index in the guest's CSR edge
/// order — the same order the legacy `edge_path(e)` API uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PEdge(u32);

/// A target-side (host) node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TNode(u32);

/// A target-side (host) edge handle: an index in the host's CSR edge
/// order, usable directly into [`EmbeddingIr::link_traffic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TEdge(u32);

macro_rules! handle_impl {
    ($name:ident) => {
        impl $name {
            /// Wraps a raw index.
            #[must_use]
            pub fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw index, widened for slice addressing.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

handle_impl!(PNode);
handle_impl!(PEdge);
handle_impl!(TNode);
handle_impl!(TEdge);

/// An arena-backed embedding of a program (guest) graph into a target
/// (host) graph.
///
/// Layout: `node_map[p]` is the target node of program node `p`;
/// `path_arena[path_offsets[e] .. path_offsets[e + 1]]` is the hyperpath
/// of program edge `e` (both endpoints included, a single node when the
/// endpoints coincide). `path_offsets` has one entry per program edge plus
/// a terminating length, so hyperpath access is two loads and a slice.
///
/// # Examples
///
/// ```
/// use scg_embed::{hypercube_into_tn, Embedding};
///
/// # fn main() -> Result<(), scg_embed::EmbedError> {
/// let ir = hypercube_into_tn(5, 1_000)?.into_ir();
/// let audit = ir.audit();
/// assert_eq!(audit.dilation, 1);
/// assert_eq!(audit.load, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingIr {
    guest: Arc<DenseGraph>,
    host: Arc<DenseGraph>,
    node_map: Vec<NodeId>,
    path_arena: Vec<NodeId>,
    path_offsets: Vec<u32>,
}

/// The four paper metrics plus the aggregates the bench tables report,
/// computed in one pass over the arena by [`EmbeddingIr::audit`].
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedAudit {
    /// Most program nodes mapped onto a single target node.
    pub load: usize,
    /// `|V_target| / |V_program|`.
    pub expansion: f64,
    /// Longest hyperpath, in target links.
    pub dilation: usize,
    /// Most hyperpaths crossing a single directed target link.
    pub congestion: usize,
    /// Mean hyperpath length, in target links.
    pub mean_path_length: f64,
    /// Total target links traversed across all hyperpaths.
    pub total_hops: usize,
}

impl EmbeddingIr {
    /// Builds and validates an IR from its flat parts.
    ///
    /// `path_offsets` must have `guest.num_edges() + 1` entries, start at
    /// zero, be monotone, and end at `path_arena.len()`; every hyperpath
    /// must be non-empty, start and end on its edge's mapped endpoints,
    /// and walk target adjacencies.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::InvalidMap`] — map or offset table malformed;
    /// * [`EmbedError::InvalidPath`] — a hyperpath is empty, has wrong
    ///   endpoints, or leaves the target's adjacency.
    pub fn from_parts(
        guest: impl Into<Arc<DenseGraph>>,
        host: impl Into<Arc<DenseGraph>>,
        node_map: Vec<NodeId>,
        path_arena: Vec<NodeId>,
        path_offsets: Vec<u32>,
    ) -> Result<Self, EmbedError> {
        let (guest, host) = (guest.into(), host.into());
        if node_map.len() != guest.num_nodes() {
            return Err(EmbedError::InvalidMap {
                reason: "node map length differs from guest order",
            });
        }
        if node_map.iter().any(|&h| h as usize >= host.num_nodes()) {
            return Err(EmbedError::InvalidMap {
                reason: "node map target out of host range",
            });
        }
        if path_offsets.len() != guest.num_edges() + 1 {
            return Err(EmbedError::InvalidMap {
                reason: "one path per guest edge required",
            });
        }
        if path_offsets.first() != Some(&0) {
            return Err(EmbedError::InvalidMap {
                reason: "path offsets must start at zero",
            });
        }
        if path_offsets.windows(2).any(|w| w[0] >= w[1]) {
            return Err(EmbedError::InvalidMap {
                reason: "path offsets must be strictly increasing (no empty hyperpaths)",
            });
        }
        if path_offsets.last().copied().unwrap_or(0) as usize != path_arena.len() {
            return Err(EmbedError::InvalidMap {
                reason: "path arena length differs from final offset",
            });
        }
        for (e, (u, v)) in guest.edges().enumerate() {
            let seg = &path_arena[path_offsets[e] as usize..path_offsets[e + 1] as usize];
            let ok = seg[0] == node_map[u as usize]
                && seg[seg.len() - 1] == node_map[v as usize]
                && seg
                    .windows(2)
                    .all(|w| host.edge_index(w[0], w[1]).is_some());
            if !ok {
                return Err(EmbedError::InvalidPath { guest_edge: e });
            }
        }
        Ok(EmbeddingIr {
            guest,
            host,
            node_map,
            path_arena,
            path_offsets,
        })
    }

    /// Starts an [`IrBuilder`] for the given program/target pair.
    #[must_use]
    pub fn builder(
        guest: impl Into<Arc<DenseGraph>>,
        host: impl Into<Arc<DenseGraph>>,
    ) -> IrBuilder {
        IrBuilder::new(guest, host)
    }

    /// The program (guest) graph.
    #[must_use]
    pub fn guest(&self) -> &DenseGraph {
        &self.guest
    }

    /// The target (host) graph.
    #[must_use]
    pub fn host(&self) -> &DenseGraph {
        &self.host
    }

    /// The shared program graph handle.
    #[must_use]
    pub fn guest_arc(&self) -> &Arc<DenseGraph> {
        &self.guest
    }

    /// The shared target graph handle.
    #[must_use]
    pub fn host_arc(&self) -> &Arc<DenseGraph> {
        &self.host
    }

    /// Number of program nodes.
    #[must_use]
    pub fn num_program_nodes(&self) -> usize {
        self.node_map.len()
    }

    /// Number of program edges (= number of hyperpaths).
    #[must_use]
    pub fn num_program_edges(&self) -> usize {
        self.path_offsets.len() - 1
    }

    /// The program → target node map, in raw id form.
    #[must_use]
    pub fn node_map(&self) -> &[NodeId] {
        &self.node_map
    }

    /// The target node of program node `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn target(&self, p: PNode) -> TNode {
        TNode(self.node_map[p.index()])
    }

    /// All program edge handles, in guest CSR order.
    pub fn program_edges(&self) -> impl Iterator<Item = PEdge> {
        (0..len_u32(self.num_program_edges())).map(PEdge)
    }

    /// The hyperpath of program edge `e`: the full target-node walk, both
    /// endpoints included.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn hyperpath(&self, e: PEdge) -> &[NodeId] {
        self.hyperpath_at(e.index())
    }

    /// [`EmbeddingIr::hyperpath`] by raw edge index (the legacy
    /// `edge_path(e)` addressing).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn hyperpath_at(&self, e: usize) -> &[NodeId] {
        &self.path_arena[self.path_offsets[e] as usize..self.path_offsets[e + 1] as usize]
    }

    /// The target edge handle of the directed host link `u → v`, if it
    /// exists.
    #[must_use]
    pub fn host_link(&self, u: TNode, v: TNode) -> Option<TEdge> {
        self.host.edge_index(u.0, v.0).map(|e| TEdge(len_u32(e)))
    }

    /// Most program nodes mapped onto a single target node.
    #[must_use]
    pub fn load(&self) -> usize {
        let mut count = vec![0usize; self.host.num_nodes()];
        for &h in &self.node_map {
            count[h as usize] += 1;
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// `|V_target| / |V_program|`.
    #[must_use]
    pub fn expansion(&self) -> f64 {
        self.host.num_nodes() as f64 / self.guest.num_nodes() as f64
    }

    /// Longest hyperpath, in target links.
    #[must_use]
    pub fn dilation(&self) -> usize {
        self.path_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize - 1)
            .max()
            .unwrap_or(0)
    }

    /// Mean hyperpath length, in target links.
    #[must_use]
    pub fn mean_path_length(&self) -> f64 {
        let edges = self.num_program_edges();
        if edges == 0 {
            return 0.0;
        }
        let total = self.path_arena.len() - edges;
        total as f64 / edges as f64
    }

    /// Most hyperpaths crossing a single directed target link.
    #[must_use]
    pub fn congestion(&self) -> usize {
        self.congestion_filtered(|_| true)
    }

    /// Congestion counting only the program edges accepted by `filter`
    /// (guest CSR edge order) — the paper's per-dimension congestion.
    #[must_use]
    pub fn congestion_filtered(&self, filter: impl Fn(usize) -> bool) -> usize {
        let mut count = vec![0usize; self.host.num_edges()];
        for e in 0..self.num_program_edges() {
            if !filter(e) {
                continue;
            }
            for w in self.hyperpath_at(e).windows(2) {
                let link = self
                    .host
                    .edge_index(w[0], w[1])
                    .expect("validated at construction"); // scg-allow(SCG001): from_parts rejects hyperpaths that are not host walks
                count[link] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Per-target-link traffic counts, indexed by host CSR edge order
    /// (i.e. by [`TEdge::index`]).
    #[must_use]
    pub fn link_traffic(&self) -> Vec<usize> {
        let mut count = vec![0usize; self.host.num_edges()];
        for e in 0..self.num_program_edges() {
            for w in self.hyperpath_at(e).windows(2) {
                // scg-allow(SCG001): from_parts rejects hyperpaths that are not host walks
                count[self.host.edge_index(w[0], w[1]).expect("validated")] += 1;
            }
        }
        count
    }

    /// The generic auditor: all metrics in one pass over the arena.
    #[must_use]
    pub fn audit(&self) -> EmbedAudit {
        let mut node_count = vec![0usize; self.host.num_nodes()];
        for &h in &self.node_map {
            node_count[h as usize] += 1;
        }
        let mut link_count = vec![0usize; self.host.num_edges()];
        let mut dilation = 0usize;
        let mut total_hops = 0usize;
        for e in 0..self.num_program_edges() {
            let seg = self.hyperpath_at(e);
            dilation = dilation.max(seg.len() - 1);
            total_hops += seg.len() - 1;
            for w in seg.windows(2) {
                let link = self
                    .host
                    .edge_index(w[0], w[1])
                    .expect("validated at construction"); // scg-allow(SCG001): from_parts rejects hyperpaths that are not host walks
                link_count[link] += 1;
            }
        }
        let edges = self.num_program_edges();
        EmbedAudit {
            load: node_count.into_iter().max().unwrap_or(0),
            expansion: self.expansion(),
            dilation,
            congestion: link_count.into_iter().max().unwrap_or(0),
            mean_path_length: if edges == 0 {
                0.0
            } else {
                total_hops as f64 / edges as f64
            },
            total_hops,
        }
    }

    /// Composes two embeddings — program → mid (`self`) and mid → target
    /// (`inner`) — by zero-copy hyperpath splicing: the composed arena is
    /// sized exactly in a first pass, then filled with slice copies from
    /// `inner`'s arena. No per-edge path vectors are allocated.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::Unsupported`] if `inner`'s program graph is
    /// not structurally equal to `self`'s target graph, and propagates
    /// validation failures.
    pub fn compose(&self, inner: &EmbeddingIr) -> Result<EmbeddingIr, EmbedError> {
        if *inner.guest != *self.host {
            return Err(EmbedError::Unsupported {
                reason: "composition requires inner.guest == outer.host".into(),
            });
        }
        let edges = self.num_program_edges();
        // Pass 1: the exact composed arena length. Each mid hop of length
        // n splices in an inner hyperpath of n+1 nodes sharing one
        // junction node with its predecessor.
        let mut total = 0usize;
        for e in 0..edges {
            let seg = self.hyperpath_at(e);
            total += 1;
            for w in seg.windows(2) {
                let mid = self
                    .host
                    .edge_index(w[0], w[1])
                    .expect("validated at construction"); // scg-allow(SCG001): from_parts rejects hyperpaths that are not host walks
                total += inner.hyperpath_at(mid).len() - 1;
            }
        }
        // Pass 2: fill. Exactly three vectors are allocated (map, arena,
        // offsets), none of them per edge — see tests/alloc_free_compose.rs.
        let node_map: Vec<NodeId> = self
            .node_map
            .iter()
            .map(|&m| inner.node_map[m as usize])
            .collect();
        let mut arena: Vec<NodeId> = Vec::with_capacity(total);
        let mut offsets: Vec<u32> = Vec::with_capacity(edges + 1);
        offsets.push(0);
        for e in 0..edges {
            let seg = self.hyperpath_at(e);
            arena.push(inner.node_map[seg[0] as usize]);
            for w in seg.windows(2) {
                let mid = self
                    .host
                    .edge_index(w[0], w[1])
                    .expect("validated at construction"); // scg-allow(SCG001): from_parts rejects hyperpaths that are not host walks
                let spliced = inner.hyperpath_at(mid);
                arena.extend_from_slice(&spliced[1..]);
            }
            offsets.push(len_u32(arena.len()));
        }
        EmbeddingIr::from_parts(
            self.guest.clone(),
            inner.host.clone(),
            node_map,
            arena,
            offsets,
        )
    }

    /// Fault-aware re-embedding: keeps the node map, copies hyperpaths
    /// untouched by `view`'s fault set verbatim, and re-routes only the
    /// crossing ones along shortest survivor paths.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::Unsupported`] — `view` is not over this target
    ///   graph;
    /// * [`EmbedError::MappedNodeFailed`] — a fault hit a node carrying a
    ///   program node (re-embedding cannot move the map);
    /// * [`EmbedError::ReembedDisconnected`] — the survivors no longer
    ///   connect some hyperpath's endpoints.
    pub fn reembed(&self, view: &SurvivorView<'_>) -> Result<EmbeddingIr, EmbedError> {
        self.reembed_with(view, |src, dst| view.shortest_path(src, dst))
    }

    /// [`EmbeddingIr::reembed`] with a caller-supplied router for the
    /// crossing hyperpaths. `reroute(src, dst)` must return a full node
    /// path (endpoints inclusive) avoiding `view`'s faults, or `None` when
    /// it cannot; the returned path is re-validated (liveness, endpoints,
    /// adjacency via [`EmbeddingIr::from_parts`]) so a buggy router cannot
    /// forge a certificate.
    ///
    /// # Errors
    ///
    /// As [`EmbeddingIr::reembed`]; additionally
    /// [`EmbedError::InvalidPath`] if `reroute` returns a dead or
    /// wrong-endpoint path.
    pub fn reembed_with(
        &self,
        view: &SurvivorView<'_>,
        mut reroute: impl FnMut(NodeId, NodeId) -> Option<Vec<NodeId>>,
    ) -> Result<EmbeddingIr, EmbedError> {
        if *view.graph() != *self.host {
            return Err(EmbedError::Unsupported {
                reason: "survivor view is not over this embedding's host".into(),
            });
        }
        for (p, &t) in self.node_map.iter().enumerate() {
            if !view.is_alive(t) {
                return Err(EmbedError::MappedNodeFailed {
                    program_node: p,
                    host_node: t,
                });
            }
        }
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::reembed_timer();
        let mut arena: Vec<NodeId> = Vec::with_capacity(self.path_arena.len());
        let mut offsets: Vec<u32> = Vec::with_capacity(self.path_offsets.len());
        offsets.push(0);
        let mut rerouted = 0usize;
        for e in 0..self.num_program_edges() {
            let seg = self.hyperpath_at(e);
            if view.path_is_live(seg) {
                arena.extend_from_slice(seg);
            } else {
                let (src, dst) = (seg[0], seg[seg.len() - 1]);
                let fresh =
                    reroute(src, dst).ok_or(EmbedError::ReembedDisconnected { guest_edge: e })?;
                if !view.path_is_live(&fresh)
                    || fresh.first() != Some(&src)
                    || fresh.last() != Some(&dst)
                {
                    return Err(EmbedError::InvalidPath { guest_edge: e });
                }
                rerouted += 1;
                arena.extend_from_slice(&fresh);
            }
            offsets.push(len_u32(arena.len()));
        }
        #[cfg(feature = "obs")]
        crate::obs_hooks::reembed_done(rerouted as u64);
        #[cfg(not(feature = "obs"))]
        let _ = rerouted; // scg-allow(SCG005): feature-gated use; discards a counter, not a Result
        EmbeddingIr::from_parts(
            self.guest.clone(),
            self.host.clone(),
            self.node_map.clone(),
            arena,
            offsets,
        )
    }

    /// Multi-fault re-embedding with load rebalancing: where
    /// [`EmbeddingIr::reembed`] refuses to continue when a fault hits a
    /// *mapped* host node, this variant **remaps** each orphaned program
    /// node onto a live host — the nearest one (host-graph BFS distance
    /// from the dead host), preferring lightly-loaded hosts, ties broken
    /// by lowest id — and then re-routes every hyperpath whose endpoints
    /// moved or whose walk crosses a fault. Surviving hyperpaths are still
    /// copied verbatim, so an undisturbed region of the embedding is
    /// byte-identical before and after.
    ///
    /// Remap candidates are drawn from the BFS ball around the dead host
    /// in the *full* host graph (physical proximity survives the fault);
    /// liveness and routing use the survivor view only.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::Unsupported`] — `view` is not over this target
    ///   graph;
    /// * [`EmbedError::NoLiveHost`] — every host node is dead;
    /// * [`EmbedError::ReembedDisconnected`] /
    ///   [`EmbedError::InvalidPath`] — as [`EmbeddingIr::reembed_with`].
    pub fn reembed_rebalanced(
        &self,
        view: &SurvivorView<'_>,
        mut reroute: impl FnMut(NodeId, NodeId) -> Option<Vec<NodeId>>,
    ) -> Result<ReembedReport, EmbedError> {
        if *view.graph() != *self.host {
            return Err(EmbedError::Unsupported {
                reason: "survivor view is not over this embedding's host".into(),
            });
        }
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::reembed_timer();
        // Current per-host load, maintained across remaps so simultaneous
        // orphans spread out instead of piling onto one survivor.
        let mut load = vec![0u32; self.host.num_nodes()];
        for &h in &self.node_map {
            load[h as usize] += 1;
        }
        let mut node_map = self.node_map.clone();
        let mut remapped = 0usize;
        for (p, host_slot) in node_map.iter_mut().enumerate() {
            let dead = *host_slot;
            if view.is_alive(dead) {
                continue;
            }
            load[dead as usize] -= 1;
            let dist = self.host.bfs_distances(dead);
            let new_host = (0..self.host.num_nodes() as NodeId)
                .filter(|&h| view.is_alive(h))
                .min_by_key(|&h| (dist[h as usize], load[h as usize], h))
                .ok_or(EmbedError::NoLiveHost { program_node: p })?;
            load[new_host as usize] += 1;
            *host_slot = new_host;
            remapped += 1;
        }
        // Re-route every hyperpath that moved or crosses a fault; copy the
        // rest verbatim.
        let mut arena: Vec<NodeId> = Vec::with_capacity(self.path_arena.len());
        let mut offsets: Vec<u32> = Vec::with_capacity(self.path_offsets.len());
        offsets.push(0);
        let mut rerouted = 0usize;
        for (e, (gu, gv)) in self.guest.edges().enumerate() {
            let seg = self.hyperpath_at(e);
            let (src, dst) = (node_map[gu as usize], node_map[gv as usize]);
            if seg[0] == src && seg[seg.len() - 1] == dst && view.path_is_live(seg) {
                arena.extend_from_slice(seg);
            } else if src == dst {
                // Both endpoints collapsed onto one host: a single-node
                // hyperpath, no routing needed.
                rerouted += 1;
                arena.push(src);
            } else {
                let fresh =
                    reroute(src, dst).ok_or(EmbedError::ReembedDisconnected { guest_edge: e })?;
                if !view.path_is_live(&fresh)
                    || fresh.first() != Some(&src)
                    || fresh.last() != Some(&dst)
                {
                    return Err(EmbedError::InvalidPath { guest_edge: e });
                }
                rerouted += 1;
                arena.extend_from_slice(&fresh);
            }
            offsets.push(len_u32(arena.len()));
        }
        #[cfg(feature = "obs")]
        crate::obs_hooks::rebalance_done(remapped as u64, rerouted as u64);
        let ir = EmbeddingIr::from_parts(
            self.guest.clone(),
            self.host.clone(),
            node_map,
            arena,
            offsets,
        )?;
        Ok(ReembedReport {
            ir,
            remapped,
            rerouted,
        })
    }
}

/// Result of a rebalancing re-embedding
/// ([`EmbeddingIr::reembed_rebalanced`]): the new certificate plus how
/// much of the old embedding had to move.
#[derive(Debug, Clone)]
pub struct ReembedReport {
    /// The re-validated embedding.
    pub ir: EmbeddingIr,
    /// Program nodes moved to a new live host.
    pub remapped: usize,
    /// Hyperpaths re-routed (the rest were copied verbatim).
    pub rerouted: usize,
}

/// Fault-aware re-embedding over a super Cayley host using the compiled
/// plan cache: crossing hyperpaths are re-routed by
/// [`scg_route_faulty_ids`] (emulation route → masked-generator detour →
/// survivor BFS), so re-embedding shares the detour machinery and metric
/// hooks of fault-tolerant routing.
///
/// # Errors
///
/// * [`EmbedError::Unsupported`] — `mat` does not materialize this
///   embedding's host graph;
/// * otherwise as [`EmbeddingIr::reembed`].
pub fn reembed_scg(
    ir: &EmbeddingIr,
    net: &SuperCayleyGraph,
    mat: &Materialized,
    faults: &FaultSet,
) -> Result<EmbeddingIr, EmbedError> {
    if **mat.graph() != *ir.host() {
        return Err(EmbedError::Unsupported {
            reason: "materialized network does not match the embedding host".into(),
        });
    }
    let view = SurvivorView::new(mat.graph(), faults);
    ir.reembed_with(&view, |src, dst| {
        scg_route_faulty_ids(net, mat, src, dst, faults).ok()
    })
}

/// Rebalancing re-embedding over a super Cayley host: like
/// [`reembed_scg`], but faults on *mapped* host nodes are healed by
/// remapping the orphaned program nodes onto nearby live hosts
/// ([`EmbeddingIr::reembed_rebalanced`]), with crossing hyperpaths
/// re-routed through the same fault-tolerant plan-cache router.
///
/// # Errors
///
/// * [`EmbedError::Unsupported`] — `mat` does not materialize this
///   embedding's host graph;
/// * otherwise as [`EmbeddingIr::reembed_rebalanced`].
pub fn reembed_scg_rebalanced(
    ir: &EmbeddingIr,
    net: &SuperCayleyGraph,
    mat: &Materialized,
    faults: &FaultSet,
) -> Result<ReembedReport, EmbedError> {
    if **mat.graph() != *ir.host() {
        return Err(EmbedError::Unsupported {
            reason: "materialized network does not match the embedding host".into(),
        });
    }
    let view = SurvivorView::new(mat.graph(), faults);
    ir.reembed_rebalanced(&view, |src, dst| {
        scg_route_faulty_ids(net, mat, src, dst, faults).ok()
    })
}

/// Incremental builder for an [`EmbeddingIr`]: set the node map, then
/// record each program edge's hyperpath hop by hop straight into the
/// shared arena — no per-edge vectors.
///
/// Hyperpaths must be recorded in guest CSR edge order (the order
/// `DenseGraph::edges` yields); [`IrBuilder::finish`] validates the whole
/// record.
#[derive(Debug, Clone)]
pub struct IrBuilder {
    guest: Arc<DenseGraph>,
    host: Arc<DenseGraph>,
    node_map: Vec<NodeId>,
    path_arena: Vec<NodeId>,
    path_offsets: Vec<u32>,
}

impl IrBuilder {
    /// Starts a builder for the given program/target pair.
    #[must_use]
    pub fn new(guest: impl Into<Arc<DenseGraph>>, host: impl Into<Arc<DenseGraph>>) -> Self {
        let guest = guest.into();
        let edges = guest.num_edges();
        let mut path_offsets = Vec::with_capacity(edges + 1);
        path_offsets.push(0);
        IrBuilder {
            guest,
            host: host.into(),
            node_map: Vec::new(),
            path_arena: Vec::with_capacity(2 * edges),
            path_offsets,
        }
    }

    /// Sets the full program → target node map.
    #[must_use]
    pub fn node_map(mut self, map: Vec<NodeId>) -> Self {
        self.node_map = map;
        self
    }

    /// Opens the next program edge's hyperpath at `start`.
    pub fn begin_path(&mut self, start: NodeId) {
        self.path_arena.push(start);
    }

    /// Appends one hop to the open hyperpath.
    pub fn push_hop(&mut self, next: NodeId) {
        self.path_arena.push(next);
    }

    /// Closes the open hyperpath.
    pub fn end_path(&mut self) {
        self.path_offsets.push(len_u32(self.path_arena.len()));
    }

    /// Records a complete hyperpath in one call.
    pub fn push_path(&mut self, path: &[NodeId]) {
        self.path_arena.extend_from_slice(path);
        self.path_offsets.push(len_u32(self.path_arena.len()));
    }

    /// Validates and returns the finished IR.
    ///
    /// # Errors
    ///
    /// As [`EmbeddingIr::from_parts`].
    pub fn finish(self) -> Result<EmbeddingIr, EmbedError> {
        EmbeddingIr::from_parts(
            self.guest,
            self.host,
            self.node_map,
            self.path_arena,
            self.path_offsets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::{linear_array, ring};

    fn ring_identity_ir() -> EmbeddingIr {
        let g = ring(5);
        let mut b = IrBuilder::new(g.clone(), g).node_map((0..5).collect());
        let pairs: Vec<(NodeId, NodeId)> = ring(5).edges().collect();
        for (u, v) in pairs {
            b.begin_path(u);
            b.push_hop(v);
            b.end_path();
        }
        b.finish().unwrap()
    }

    #[test]
    fn builder_roundtrip_and_handles() {
        let ir = ring_identity_ir();
        assert_eq!(ir.num_program_nodes(), 5);
        assert_eq!(ir.num_program_edges(), 10);
        assert_eq!(ir.target(PNode::new(3)), TNode::new(3));
        let e = PEdge::new(0);
        assert_eq!(ir.hyperpath(e).len(), 2);
        let (u, v) = (ir.hyperpath(e)[0], ir.hyperpath(e)[1]);
        let link = ir.host_link(TNode::new(u), TNode::new(v)).unwrap();
        assert_eq!(ir.link_traffic()[link.index()], 1);
    }

    #[test]
    fn audit_matches_individual_metrics() {
        let ir = ring_identity_ir();
        let a = ir.audit();
        assert_eq!(a.load, ir.load());
        assert_eq!(a.dilation, ir.dilation());
        assert_eq!(a.congestion, ir.congestion());
        assert!((a.expansion - ir.expansion()).abs() < 1e-12);
        assert!((a.mean_path_length - ir.mean_path_length()).abs() < 1e-12);
        assert_eq!(a.total_hops, 10);
    }

    #[test]
    fn malformed_offsets_rejected() {
        let g = linear_array(2);
        // Offsets not starting at zero.
        let bad = EmbeddingIr::from_parts(
            g.clone(),
            g.clone(),
            vec![0, 1],
            vec![0, 1, 1, 0],
            vec![1, 2, 4],
        );
        assert!(matches!(bad, Err(EmbedError::InvalidMap { .. })));
        // Empty hyperpath (equal consecutive offsets).
        let bad2 =
            EmbeddingIr::from_parts(g.clone(), g.clone(), vec![0, 1], vec![0, 1], vec![0, 2, 2]);
        assert!(matches!(bad2, Err(EmbedError::InvalidMap { .. })));
        // Arena length disagrees with the final offset.
        let bad3 = EmbeddingIr::from_parts(
            g.clone(),
            g.clone(),
            vec![0, 1],
            vec![0, 1, 1, 0, 0],
            vec![0, 2, 4],
        );
        assert!(matches!(bad3, Err(EmbedError::InvalidMap { .. })));
        // Well-formed offsets, wrong endpoint.
        let bad4 =
            EmbeddingIr::from_parts(g.clone(), g, vec![0, 1], vec![0, 1, 0, 1], vec![0, 2, 4]);
        assert!(matches!(
            bad4,
            Err(EmbedError::InvalidPath { guest_edge: 1 })
        ));
    }

    #[test]
    fn reembed_copies_live_paths_verbatim() {
        let g = ring(6);
        let ir = {
            let mut b = IrBuilder::new(g.clone(), g.clone()).node_map((0..6).collect());
            let pairs: Vec<(NodeId, NodeId)> = g.edges().collect();
            for (u, v) in pairs {
                b.push_path(&[u, v]);
            }
            b.finish().unwrap()
        };
        let faults = FaultSet::new();
        let view = SurvivorView::new(ir.host(), &faults);
        let re = ir.reembed(&view).unwrap();
        assert_eq!(re.audit(), ir.audit());
    }

    #[test]
    fn reembed_rejects_faulted_mapped_node() {
        let ir = ring_identity_ir();
        let mut faults = FaultSet::new();
        faults.fail_node(2);
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        assert!(matches!(
            ir.reembed(&view),
            Err(EmbedError::MappedNodeFailed {
                program_node: 2,
                host_node: 2
            })
        ));
    }

    #[test]
    fn reembed_reroutes_cut_links() {
        // Identity ring embedding; cut one directed link and reembed: the
        // crossing hyperpath must be re-routed the long way round.
        let ir = ring_identity_ir();
        let mut faults = FaultSet::new();
        faults.fail_link(0, 1);
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        let re = ir.reembed(&view).unwrap();
        assert_eq!(re.node_map(), ir.node_map());
        // The 0 → 1 hyperpath now takes the 4-hop reverse walk.
        let cut = ring(5).edges().position(|(u, v)| u == 0 && v == 1).unwrap();
        assert_eq!(re.hyperpath_at(cut), &[0, 4, 3, 2, 1]);
        assert_eq!(re.audit().dilation, 4);
        // All other hyperpaths are untouched.
        for e in 0..ir.num_program_edges() {
            if e != cut {
                assert_eq!(re.hyperpath_at(e), ir.hyperpath_at(e));
            }
        }
    }

    #[test]
    fn rebalanced_reembed_remaps_dead_hosts() {
        // Identity ring embedding; kill mapped host 2. Plain reembed
        // refuses; the rebalancing variant moves guest node 2 to a live
        // neighbor and re-routes its incident hyperpaths.
        let ir = ring_identity_ir();
        let mut faults = FaultSet::new();
        faults.fail_node(2);
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        assert!(matches!(
            ir.reembed(&view),
            Err(EmbedError::MappedNodeFailed { .. })
        ));
        let r = ir
            .reembed_rebalanced(&view, |s, d| view.shortest_path(s, d))
            .unwrap();
        assert_eq!(r.remapped, 1);
        assert!(r.rerouted >= 2, "both incident edges move");
        let new_host = r.ir.node_map()[2];
        assert_ne!(new_host, 2);
        assert!(view.is_alive(new_host));
        // Nearest live host to 2 on the 5-ring is a direct neighbor.
        assert!(new_host == 1 || new_host == 3);
        // Every hyperpath is live and untouched ones are verbatim.
        for e in 0..r.ir.num_program_edges() {
            assert!(view.path_is_live(r.ir.hyperpath_at(e)));
        }
    }

    #[test]
    fn rebalanced_reembed_spreads_load() {
        // Ring of 6, identity embedding; kill hosts 2 and 3 at once. The
        // two orphans must land on different live hosts (load balancing),
        // not both on the same survivor.
        let g = ring(6);
        let ir = {
            let mut b = IrBuilder::new(g.clone(), g.clone()).node_map((0..6).collect());
            let pairs: Vec<(NodeId, NodeId)> = g.edges().collect();
            for (u, v) in pairs {
                b.push_path(&[u, v]);
            }
            b.finish().unwrap()
        };
        let mut faults = FaultSet::new();
        faults.fail_node(2);
        faults.fail_node(3);
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        let r = ir
            .reembed_rebalanced(&view, |s, d| view.shortest_path(s, d))
            .unwrap();
        assert_eq!(r.remapped, 2);
        let (h2, h3) = (r.ir.node_map()[2], r.ir.node_map()[3]);
        assert!(view.is_alive(h2) && view.is_alive(h3));
        assert_ne!(h2, h3, "orphans spread over distinct survivors");
        assert!(r.ir.load() <= 2);
        for e in 0..r.ir.num_program_edges() {
            assert!(view.path_is_live(r.ir.hyperpath_at(e)));
        }
    }

    #[test]
    fn rebalanced_reembed_with_no_mapped_faults_matches_reembed() {
        let ir = ring_identity_ir();
        let mut faults = FaultSet::new();
        faults.fail_link(0, 1);
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        let plain = ir.reembed(&view).unwrap();
        let r = ir
            .reembed_rebalanced(&view, |s, d| view.shortest_path(s, d))
            .unwrap();
        assert_eq!(r.remapped, 0);
        assert_eq!(r.rerouted, 1);
        assert_eq!(r.ir.node_map(), plain.node_map());
        for e in 0..plain.num_program_edges() {
            assert_eq!(r.ir.hyperpath_at(e), plain.hyperpath_at(e));
        }
    }

    #[test]
    fn rebalanced_reembed_reports_no_live_host() {
        let ir = ring_identity_ir();
        let mut faults = FaultSet::new();
        for u in 0..5 {
            faults.fail_node(u);
        }
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        let r = ir.reembed_rebalanced(&view, |s, d| view.shortest_path(s, d));
        assert!(matches!(r, Err(EmbedError::NoLiveHost { program_node: 0 })));
    }

    #[test]
    fn reembed_with_rejects_forged_paths() {
        let ir = ring_identity_ir();
        let mut faults = FaultSet::new();
        faults.fail_link(0, 1);
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        // A router that returns the (dead) original path verbatim.
        let forged = ir.reembed_with(&view, |src, dst| Some(vec![src, dst]));
        assert!(matches!(forged, Err(EmbedError::InvalidPath { .. })));
    }

    #[test]
    fn reembed_disconnected_reports_edge() {
        let ir = ring_identity_ir();
        let mut faults = FaultSet::new();
        faults.fail_link(0, 1);
        let host = ir.host_arc().clone();
        let view = SurvivorView::new(&host, &faults);
        let r = ir.reembed_with(&view, |_, _| None);
        assert!(matches!(
            r,
            Err(EmbedError::ReembedDisconnected { guest_edge: _ })
        ));
    }
}
