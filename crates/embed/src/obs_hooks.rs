//! `obs`-feature hooks: embedding-engine metrics.
//!
//! Compiled only with the `obs` cargo feature. Hooks are record-only —
//! they never branch on metric state, so every constructed embedding is
//! bit-identical with and without the feature. Families are labeled by
//! guest class (`guest="star"`, `guest="hypercube"`, …), matching the
//! network-labeled convention of the core hooks.

use scg_obs::{EventTrace, Registry, Timer};

/// Wall-time bucket bounds in microseconds: 1 µs .. 10 s, decades.
const MICROS_BOUNDS: [u64; 8] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Dilation bucket bounds: the paper's constants are single digits
/// (1–7), with headroom for composed pipelines.
const DILATION_BOUNDS: [u64; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 12, 16];

/// Times one embedding construction into
/// `scg_embed_build_micros{guest=…}` and leaves a trace event.
pub(crate) fn build_timer(guest: &str) -> Timer {
    EventTrace::global().record("embed.build", &[]);
    Registry::global()
        .counter("scg_embed_builds_total", &[("guest", guest)])
        .inc();
    Timer::new(Registry::global().histogram(
        "scg_embed_build_micros",
        &[("guest", guest)],
        &MICROS_BOUNDS,
    ))
}

/// Records the measured dilation of a finished embedding in the per-guest
/// class histogram `scg_embed_dilation{guest=…}`.
pub(crate) fn build_done(guest: &str, dilation: usize) {
    Registry::global()
        .histogram("scg_embed_dilation", &[("guest", guest)], &DILATION_BOUNDS)
        .observe(dilation as u64);
}

/// Times one [`reembed`](crate::EmbeddingIr::reembed) pass into
/// `scg_embed_reembed_micros`.
pub(crate) fn reembed_timer() -> Timer {
    Timer::new(Registry::global().histogram("scg_embed_reembed_micros", &[], &MICROS_BOUNDS))
}

/// One completed re-embedding: bumps `scg_embed_reembed_total` and adds
/// the number of hyperpaths that actually had to be re-routed to
/// `scg_embed_reembed_rerouted_total`.
pub(crate) fn reembed_done(rerouted: u64) {
    let reg = Registry::global();
    reg.counter("scg_embed_reembed_total", &[]).inc();
    reg.counter("scg_embed_reembed_rerouted_total", &[])
        .add(rerouted);
    EventTrace::global().record(
        "embed.reembed",
        &[("rerouted", i64::try_from(rerouted).unwrap_or(i64::MAX))],
    );
}

/// One completed rebalancing re-embedding: adds the number of program
/// nodes that were moved to a new live host to
/// `scg_embed_remapped_total`.
pub(crate) fn rebalance_done(remapped: u64, rerouted: u64) {
    Registry::global()
        .counter("scg_embed_remapped_total", &[])
        .add(remapped);
    EventTrace::global().record(
        "embed.rebalance",
        &[
            ("remapped", i64::try_from(remapped).unwrap_or(i64::MAX)),
            ("rerouted", i64::try_from(rerouted).unwrap_or(i64::MAX)),
        ],
    );
}
