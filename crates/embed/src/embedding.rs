//! The legacy embedding view and its quality metrics.
//!
//! [`Embedding`] is a thin compatibility wrapper over the arena-backed
//! [`EmbeddingIr`]: the constructor API still accepts per-edge path
//! vectors (flattened into the shared arena on entry) and every metric
//! delegates to the IR's generic auditor, so pre-IR callers and goldens
//! see identical values while the storage underneath is three flat
//! vectors.

use std::sync::Arc;

use scg_graph::{DenseGraph, NodeId};

use crate::error::EmbedError;
use crate::ir::EmbeddingIr;

/// An embedding of a guest graph into a host graph: a node map plus, for
/// every directed guest edge, a routing path in the host.
///
/// The four standard quality metrics follow the paper's definitions:
///
/// * **load** — most guest nodes mapped onto one host node;
/// * **expansion** — `|V_host| / |V_guest|`;
/// * **dilation** — longest routing path (in host links);
/// * **congestion** — most routing paths crossing one host link.
///
/// Construction validates every path (endpoints match the node map,
/// consecutive nodes are host-adjacent), so a value of this type is a
/// *certificate*: the metrics it reports are facts about a checked object,
/// not about intentions. Storage is the arena-backed [`EmbeddingIr`]
/// (`into_ir`/`ir` expose it).
///
/// # Examples
///
/// ```
/// use scg_core::{StarGraph, SuperCayleyGraph};
/// use scg_embed::CayleyEmbedding;
///
/// # fn main() -> Result<(), scg_embed::EmbedError> {
/// let star = StarGraph::new(5)?;
/// let host = SuperCayleyGraph::insertion_selection(5)?;
/// let e = CayleyEmbedding::build(&star, &host, 1_000)?.into_embedding();
/// assert_eq!(e.dilation(), 2);      // Theorem 2
/// assert_eq!(e.load(), 1);
/// assert_eq!(e.expansion(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Embedding {
    ir: EmbeddingIr,
}

impl From<EmbeddingIr> for Embedding {
    fn from(ir: EmbeddingIr) -> Self {
        Embedding { ir }
    }
}

impl Embedding {
    /// Builds and validates an embedding from per-edge path vectors.
    ///
    /// `edge_paths[e]` must be the full node sequence (both endpoints
    /// included) routing guest edge `e` — edges are indexed in the guest's
    /// CSR order. A guest edge between nodes mapped to the same host node
    /// may use a single-node path. The vectors are flattened into the
    /// shared IR arena; constructors that can should build an
    /// [`EmbeddingIr`] directly instead.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::InvalidMap`] — map length/node ids wrong;
    /// * [`EmbedError::InvalidPath`] — a path is empty, has wrong endpoints,
    ///   or leaves the host's adjacency.
    pub fn new(
        guest: impl Into<Arc<DenseGraph>>,
        host: impl Into<Arc<DenseGraph>>,
        node_map: Vec<NodeId>,
        edge_paths: Vec<Vec<NodeId>>,
    ) -> Result<Self, EmbedError> {
        let guest = guest.into();
        if edge_paths.len() != guest.num_edges() {
            return Err(EmbedError::InvalidMap {
                reason: "one path per guest edge required",
            });
        }
        if edge_paths.iter().any(Vec::is_empty) {
            // Flattening cannot represent an empty path; reject it with the
            // edge index the legacy validator would have reported.
            let e = edge_paths
                .iter()
                .position(Vec::is_empty)
                .expect("just found one"); // scg-allow(SCG001): the any() on the line above guarantees a match
            return Err(EmbedError::InvalidPath { guest_edge: e });
        }
        let total: usize = edge_paths.iter().map(Vec::len).sum();
        let mut arena = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(edge_paths.len() + 1);
        offsets.push(0);
        for path in &edge_paths {
            arena.extend_from_slice(path);
            offsets.push(scg_perm::cast::len_u32(arena.len()));
        }
        EmbeddingIr::from_parts(guest, host, node_map, arena, offsets).map(Embedding::from)
    }

    /// The underlying arena-backed IR.
    #[must_use]
    pub fn ir(&self) -> &EmbeddingIr {
        &self.ir
    }

    /// Consumes `self`, returning the underlying IR.
    #[must_use]
    pub fn into_ir(self) -> EmbeddingIr {
        self.ir
    }

    /// The guest graph.
    #[must_use]
    pub fn guest(&self) -> &DenseGraph {
        self.ir.guest()
    }

    /// The host graph.
    #[must_use]
    pub fn host(&self) -> &DenseGraph {
        self.ir.host()
    }

    /// The shared host graph handle (clone to keep it alive cheaply).
    #[must_use]
    pub fn host_arc(&self) -> &Arc<DenseGraph> {
        self.ir.host_arc()
    }

    /// The guest → host node map.
    #[must_use]
    pub fn node_map(&self) -> &[NodeId] {
        self.ir.node_map()
    }

    /// The routing path of guest edge `e` (guest CSR edge order).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge_path(&self, e: usize) -> &[NodeId] {
        self.ir.hyperpath_at(e)
    }

    /// Most guest nodes mapped onto a single host node.
    #[must_use]
    pub fn load(&self) -> usize {
        self.ir.load()
    }

    /// `|V_host| / |V_guest|`.
    #[must_use]
    pub fn expansion(&self) -> f64 {
        self.ir.expansion()
    }

    /// Longest routing path, in host links.
    #[must_use]
    pub fn dilation(&self) -> usize {
        self.ir.dilation()
    }

    /// Mean routing path length, in host links.
    #[must_use]
    pub fn mean_path_length(&self) -> f64 {
        self.ir.mean_path_length()
    }

    /// Most routing paths crossing a single directed host link, counting
    /// every guest edge.
    #[must_use]
    pub fn congestion(&self) -> usize {
        self.ir.congestion()
    }

    /// Congestion counting only the guest edges accepted by `filter`
    /// (indexed in guest CSR edge order). Used for the paper's
    /// per-dimension congestion claims.
    #[must_use]
    pub fn congestion_filtered(&self, filter: impl Fn(usize) -> bool) -> usize {
        self.ir.congestion_filtered(filter)
    }

    /// Per-host-link traffic counts (validated paths only), for traffic
    /// uniformity analyses ("the traffic on all the links … is uniform
    /// within a constant factor").
    #[must_use]
    pub fn link_traffic(&self) -> Vec<usize> {
        self.ir.link_traffic()
    }

    /// Composes two embeddings: guest → mid (`self`) and mid → host
    /// (`inner`), producing guest → host. Dilation multiplies at worst.
    /// Delegates to the IR's zero-copy hyperpath splicing — no per-edge
    /// path allocations.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::Unsupported`] if `inner`'s guest is not
    /// structurally equal to `self`'s host (same graph required), and
    /// propagates validation failures.
    pub fn compose(&self, inner: &Embedding) -> Result<Embedding, EmbedError> {
        self.ir.compose(&inner.ir).map(Embedding::from)
    }

    /// Builds an embedding from a node map alone, routing every guest edge
    /// along a BFS shortest path in the host ("greedy" embedding; useful as
    /// a measured baseline).
    ///
    /// # Errors
    ///
    /// * [`EmbedError::InvalidMap`] — map malformed;
    /// * [`EmbedError::Unsupported`] — some mapped pair is disconnected.
    pub fn from_node_map(
        guest: impl Into<Arc<DenseGraph>>,
        host: impl Into<Arc<DenseGraph>>,
        node_map: Vec<NodeId>,
    ) -> Result<Embedding, EmbedError> {
        let (guest, host) = (guest.into(), host.into());
        if node_map.len() != guest.num_nodes() {
            return Err(EmbedError::InvalidMap {
                reason: "node map length differs from guest order",
            });
        }
        // One BFS per distinct source host node, recorded straight into
        // the arena.
        let mut builder = EmbeddingIr::builder(guest.clone(), host.clone());
        let mut cache: std::collections::HashMap<NodeId, Vec<NodeId>> =
            std::collections::HashMap::new();
        let mut scratch: Vec<NodeId> = Vec::new();
        for (u, v) in guest.edges() {
            let (hu, hv) = (node_map[u as usize], node_map[v as usize]);
            let parents = cache.entry(hu).or_insert_with(|| host.bfs_parents(hu));
            if hu == hv {
                builder.push_path(&[hu]);
                continue;
            }
            if parents[hv as usize] == NodeId::MAX {
                return Err(EmbedError::Unsupported {
                    reason: format!("host nodes {hu} and {hv} are disconnected"),
                });
            }
            scratch.clear();
            scratch.push(hv);
            let mut cur = hv;
            while cur != hu {
                cur = parents[cur as usize];
                scratch.push(cur);
            }
            scratch.reverse();
            builder.push_path(&scratch);
        }
        builder.node_map(node_map).finish().map(Embedding::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::{linear_array, ring};

    #[test]
    fn identity_embedding_metrics() {
        let g = ring(5);
        let map: Vec<NodeId> = (0..5).collect();
        let paths: Vec<Vec<NodeId>> = g.edges().map(|(u, v)| vec![u, v]).collect();
        let e = Embedding::new(g.clone(), g, map, paths).unwrap();
        assert_eq!(e.load(), 1);
        assert_eq!(e.dilation(), 1);
        assert_eq!(e.congestion(), 1);
        assert!((e.expansion() - 1.0).abs() < 1e-12);
        assert!((e.mean_path_length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_into_ring_via_bfs() {
        let guest = linear_array(4);
        let host = ring(8);
        // Spread the path around the ring with stride 2 → dilation 2.
        let e = Embedding::from_node_map(guest, host, vec![0, 2, 4, 6]).unwrap();
        assert_eq!(e.dilation(), 2);
        assert_eq!(e.load(), 1);
        assert_eq!(e.expansion(), 2.0);
    }

    #[test]
    fn invalid_paths_rejected() {
        let g = linear_array(2);
        let h = linear_array(3);
        // Wrong endpoint.
        let bad = Embedding::new(
            g.clone(),
            h.clone(),
            vec![0, 1],
            vec![vec![0, 1], vec![1, 2]],
        );
        assert!(matches!(bad, Err(EmbedError::InvalidPath { .. })));
        // Non-adjacent hop.
        let bad2 = Embedding::new(
            g.clone(),
            h.clone(),
            vec![0, 2],
            vec![vec![0, 2], vec![2, 0]],
        );
        assert!(matches!(bad2, Err(EmbedError::InvalidPath { .. })));
        // Wrong map length.
        let bad3 = Embedding::new(g.clone(), h.clone(), vec![0], vec![]);
        assert!(matches!(bad3, Err(EmbedError::InvalidMap { .. })));
        // Empty path.
        let bad4 = Embedding::new(g, h, vec![0, 1], vec![vec![0, 1], vec![]]);
        assert!(matches!(
            bad4,
            Err(EmbedError::InvalidPath { guest_edge: 1 })
        ));
    }

    #[test]
    fn congestion_counts_shared_links() {
        // Two guest edges forced through the same host link.
        let guest = DenseGraph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        let host = linear_array(3);
        let e = Embedding::new(
            guest,
            host,
            vec![0, 0, 2],
            vec![vec![0, 1, 2], vec![0, 1, 2]],
        )
        .unwrap();
        assert_eq!(e.load(), 2);
        assert_eq!(e.congestion(), 2);
        assert_eq!(e.congestion_filtered(|edge| edge == 0), 1);
        assert_eq!(e.link_traffic().iter().copied().max().unwrap(), 2);
    }

    #[test]
    fn compose_multiplies_dilation_at_worst() {
        // guest: 2-path into mid: 4-ring (dilation 2), mid into host: 8-ring
        // (dilation 2) → composed dilation ≤ 4.
        let guest = linear_array(2);
        let mid = ring(4);
        let outer = Embedding::from_node_map(guest, mid.clone(), vec![0, 2]).unwrap();
        let host = ring(8);
        let inner = Embedding::from_node_map(mid, host, vec![0, 2, 4, 6]).unwrap();
        let composed = outer.compose(&inner).unwrap();
        assert!(composed.dilation() <= outer.dilation() * inner.dilation());
        assert_eq!(composed.node_map(), &[0, 4]);
    }

    #[test]
    fn compose_requires_matching_middle() {
        let guest = linear_array(2);
        let mid = ring(4);
        let outer = Embedding::from_node_map(guest, mid, vec![0, 2]).unwrap();
        let other_mid = ring(5);
        let inner = Embedding::from_node_map(other_mid, ring(10), vec![0, 2, 4, 6, 8]).unwrap();
        assert!(matches!(
            outer.compose(&inner),
            Err(EmbedError::Unsupported { .. })
        ));
    }

    #[test]
    fn compat_view_exposes_the_ir() {
        let g = ring(4);
        let map: Vec<NodeId> = (0..4).collect();
        let paths: Vec<Vec<NodeId>> = g.edges().map(|(u, v)| vec![u, v]).collect();
        let e = Embedding::new(g.clone(), g, map, paths).unwrap();
        let audit = e.ir().audit();
        assert_eq!(audit.dilation, e.dilation());
        assert_eq!(audit.load, e.load());
        let ir = e.clone().into_ir();
        assert_eq!(ir.num_program_edges(), 8);
        assert_eq!(Embedding::from(ir).dilation(), e.dilation());
    }
}
