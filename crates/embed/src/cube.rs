//! Hypercube embeddings (Corollary 5).
//!
//! The paper cites Miller–Pritikin–Sudborough for dilation-O(1) embeddings
//! of `d`-cubes into `k`-stars with `d` up to `k·log₂k − 3k/2 + o(k)`; the
//! corollary's own content is the composition with Theorems 1–3/6–7. We
//! supply a fully constructive constant-dilation guest of smaller dimension
//! — `d = ⌊(k−1)/2⌋` pairwise-disjoint transpositions give a dilation-1
//! embedding of the `d`-cube into the `k`-TN — and compose it through the
//! Theorem 6/7 machinery (substitution documented in DESIGN.md).

use scg_core::{materialize, CayleyNetwork, Generator, SuperCayleyGraph, TranspositionNetwork};
use scg_graph::NodeId;
use scg_perm::Perm;

use crate::cayley::CayleyEmbedding;
use crate::embedding::Embedding;
use crate::error::EmbedError;
use crate::ir::IrBuilder;

/// The hypercube dimension realized by the disjoint-transposition
/// construction in the `k`-TN: `⌊(k−1)/2⌋`.
#[must_use]
pub fn cube_dimension_for(k: usize) -> u32 {
    ((k - 1) / 2) as u32
}

/// Dilation-1 embedding of the `⌊(k−1)/2⌋`-cube into the `k`-TN.
///
/// Bit `i` of a cube node toggles the disjoint transposition
/// `T_{2i+2, 2i+3}`; disjoint transpositions commute, so each cube node maps
/// to a well-defined permutation and each cube edge is a single TN link.
///
/// # Errors
///
/// * [`EmbedError::Core`] — invalid `k` or TN too large to materialize
///   within `cap` nodes.
pub fn hypercube_into_tn(k: usize, cap: u64) -> Result<Embedding, EmbedError> {
    #[cfg(feature = "obs")]
    // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
    let _timer = crate::obs_hooks::build_timer("hypercube");
    let tn = TranspositionNetwork::new(k)?;
    let host = materialize(&tn, cap)?.graph().clone();
    let d = cube_dimension_for(k);
    let guest = scg_core::hypercube(d);
    let node_map: Vec<NodeId> = (0..guest.num_nodes() as u64)
        .map(|bits| {
            let mut p = Perm::identity(k);
            for i in 0..d {
                if bits >> i & 1 == 1 {
                    let a = 2 * i as usize + 2;
                    p = p.swapped(a, a + 1).expect("positions within degree"); // scg-allow(SCG001): a + 1 = 2i + 3 <= k by the cube-dimension bound
                }
            }
            p.rank() as NodeId
        })
        .collect();
    let mut builder = IrBuilder::new(guest.clone(), host);
    for (u, v) in guest.edges() {
        builder.push_path(&[node_map[u as usize], node_map[v as usize]]);
    }
    let e = Embedding::from(builder.node_map(node_map).finish()?);
    #[cfg(feature = "obs")]
    crate::obs_hooks::build_done("hypercube", e.dilation());
    Ok(e)
}

/// Corollary 5: a constant-dilation hypercube embedding into a super Cayley
/// host, via cube → `k`-TN (dilation 1) composed with the Theorem 6/7
/// transposition-network embedding.
///
/// # Errors
///
/// As [`hypercube_into_tn`] plus [`CayleyEmbedding::build`] failures.
pub fn hypercube_into_scg(host: &SuperCayleyGraph, cap: u64) -> Result<Embedding, EmbedError> {
    let k = host.degree_k();
    let cube_in_tn = hypercube_into_tn(k, cap)?;
    let tn = TranspositionNetwork::new(k)?;
    let tn_in_host = CayleyEmbedding::build(&tn, host, cap)?;
    cube_in_tn.compose(tn_in_host.embedding())
}

/// A dilation-3 embedding of the same cube directly into the `k`-star:
/// each disjoint transposition `T_{a,a+1}` expands as `T_a T_{a+1} T_a`
/// (star links), giving the constant-dilation star-guest variant of
/// Corollary 5 without going through the TN.
///
/// # Errors
///
/// * [`EmbedError::Core`] — invalid `k` or star too large within `cap`.
pub fn hypercube_into_star(k: usize, cap: u64) -> Result<Embedding, EmbedError> {
    #[cfg(feature = "obs")]
    // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
    let _timer = crate::obs_hooks::build_timer("hypercube");
    let star = scg_core::StarGraph::new(k)?;
    let host = materialize(&star, cap)?.graph().clone();
    let d = cube_dimension_for(k);
    let guest = scg_core::hypercube(d);
    let label_of = |bits: u64| {
        let mut p = Perm::identity(k);
        for i in 0..d {
            if bits >> i & 1 == 1 {
                let a = 2 * i as usize + 2;
                p = p.swapped(a, a + 1).expect("positions within degree"); // scg-allow(SCG001): a + 1 = 2i + 3 <= k by the cube-dimension bound
            }
        }
        p
    };
    let node_map: Vec<NodeId> = (0..guest.num_nodes() as u64)
        .map(|bits| label_of(bits).rank() as NodeId)
        .collect();
    let mut builder = IrBuilder::new(guest.clone(), host);
    for (u, v) in guest.edges() {
        // The flipped bit is the lowest differing bit.
        let diff = u ^ v;
        let i = diff.trailing_zeros();
        let a = 2 * i as usize + 2;
        builder.begin_path(node_map[u as usize]);
        let mut cur = label_of(u64::from(u));
        for g in [
            Generator::transposition(a),
            Generator::transposition(a + 1),
            Generator::transposition(a),
        ] {
            cur = g.apply(&cur).expect("valid star generator"); // scg-allow(SCG001): star generators act on degree-k perms by construction
            builder.push_hop(cur.rank() as NodeId);
        }
        builder.end_path();
    }
    let e = Embedding::from(builder.node_map(node_map).finish()?);
    #[cfg(feature = "obs")]
    crate::obs_hooks::build_done("hypercube", e.dilation());
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_into_tn_is_dilation_1() {
        let e = hypercube_into_tn(5, 1_000).unwrap();
        assert_eq!(e.guest().num_nodes(), 4); // d = 2
        assert_eq!(e.dilation(), 1);
        assert_eq!(e.load(), 1);
        assert_eq!(e.congestion(), 1);
    }

    #[test]
    fn cube_into_star_is_dilation_3() {
        let e = hypercube_into_star(7, 10_000).unwrap();
        assert_eq!(e.guest().num_nodes(), 8); // d = 3
        assert_eq!(e.dilation(), 3);
        assert_eq!(e.load(), 1);
    }

    #[test]
    fn corollary_5_cube_into_hosts() {
        // Constant dilation on every emulation-capable host class.
        let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let e = hypercube_into_scg(&ms, 1_000).unwrap();
        assert!(e.dilation() <= 5, "cube → TN → MS(2,·): ≤ 1 × 5");
        let is5 = SuperCayleyGraph::insertion_selection(5).unwrap();
        let e2 = hypercube_into_scg(&is5, 1_000).unwrap();
        assert!(e2.dilation() <= 6, "cube → TN → IS: ≤ 1 × 6");
    }

    #[test]
    fn dimension_formula() {
        assert_eq!(cube_dimension_for(5), 2);
        assert_eq!(cube_dimension_for(7), 3);
        assert_eq!(cube_dimension_for(8), 3);
    }
}
