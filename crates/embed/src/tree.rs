//! Complete-binary-tree embeddings (Corollary 4).
//!
//! Corollary 4 composes dilation-1 tree-into-star embeddings (cited from
//! Bouabdallah et al.) with Theorems 1–3. The cited construction is not
//! reproducible from the citation alone, so we *certify existence* by exact
//! backtracking search ([`scg_graph::embed_tree`]) on the checkable
//! instances — in particular the height-`(2k−5)` tree into the `k`-star for
//! `k = 5` — and supply the composition machinery the corollary actually
//! contributes.

use scg_core::{materialize, CayleyNetwork, StarGraph, SuperCayleyGraph, DEFAULT_NET_CAP};
use scg_graph::{complete_binary_tree, embed_tree_randomized, SearchBudget};
use scg_perm::factorial;

use crate::cayley::CayleyEmbedding;
use crate::embedding::Embedding;
use crate::error::EmbedError;
use crate::ir::IrBuilder;

/// Searches for a dilation-1 embedding of the complete binary tree of the
/// given height into the `k`-star, rooted at the identity node.
///
/// # Errors
///
/// * [`EmbedError::HostTooLarge`] — `k!` exceeds the materialization cap
///   ([`DEFAULT_NET_CAP`]), reported structurally before any search;
/// * [`EmbedError::Core`] — invalid `k`;
/// * [`EmbedError::Unsupported`] — the exhaustive search proved no embedding
///   with this root exists;
/// * [`EmbedError::SearchInconclusive`] — `budget` ran out first.
pub fn tree_into_star(
    height: u32,
    k: usize,
    budget: &mut SearchBudget,
) -> Result<Embedding, EmbedError> {
    let star = StarGraph::new(k)?;
    let num_nodes = factorial(k);
    if num_nodes > DEFAULT_NET_CAP {
        return Err(EmbedError::HostTooLarge {
            guest: "tree",
            k,
            num_nodes,
            cap: DEFAULT_NET_CAP,
        });
    }
    #[cfg(feature = "obs")]
    // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
    let _timer = crate::obs_hooks::build_timer("tree");
    let host = materialize(&star, DEFAULT_NET_CAP)?.graph().clone();
    let guest = complete_binary_tree(height);
    // Randomized candidate ordering with restarts: the deterministic
    // lexicographic order hits pathological corners (the height-5 tree in
    // the 5-star takes > 2x10^9 steps deterministically but ~100 us with a
    // perturbed order).
    let restarts = 32;
    let map = match embed_tree_randomized(
        &guest,
        &host,
        0,
        0,
        restarts,
        budget.remaining() / u64::from(restarts.max(1)),
    ) {
        Ok(Some(map)) => map,
        Ok(None) => {
            return Err(EmbedError::Unsupported {
                reason: format!("no dilation-1 embedding of height-{height} tree in {k}-star"),
            })
        }
        Err(scg_graph::GraphError::BudgetExhausted) => return Err(EmbedError::SearchInconclusive),
        Err(e) => return Err(e.into()),
    };
    let mut builder = IrBuilder::new(guest.clone(), host);
    for (u, v) in guest.edges() {
        builder.push_path(&[map[u as usize], map[v as usize]]);
    }
    let e = Embedding::from(builder.node_map(map).finish()?);
    #[cfg(feature = "obs")]
    crate::obs_hooks::build_done("tree", e.dilation());
    Ok(e)
}

/// Embeds the complete binary tree of the given height into a super Cayley
/// host (Corollary 4): tree → `k`-star with dilation 1 (searched), composed
/// with the Theorem 1–3 star embedding. Resulting dilation: 2 on `IS(k)`,
/// 3 on `MS`/`Complete-RS`, 4 on `MIS`/`Complete-RIS`.
///
/// # Errors
///
/// As [`tree_into_star`] plus the [`CayleyEmbedding::build`] failures.
pub fn tree_into_scg(
    height: u32,
    host: &SuperCayleyGraph,
    budget: &mut SearchBudget,
) -> Result<Embedding, EmbedError> {
    let k = host.degree_k();
    let into_star = tree_into_star(height, k, budget)?;
    let star = StarGraph::new(k)?;
    let star_into_host = CayleyEmbedding::build(&star, host, DEFAULT_NET_CAP)?;
    into_star.compose(star_into_host.embedding())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_3_tree_in_4_star() {
        // 15-node tree into the 24-node 4-star: max host degree 3 can host
        // parent + 2 children only at the root, so height 3 requires
        // internal nodes of tree-degree 3 = host degree 3 — feasible only if
        // the embedding is tight; allow the search to decide, but a
        // height-2 tree (7 nodes) must embed.
        let e = tree_into_star(2, 4, &mut SearchBudget::new(5_000_000)).unwrap();
        assert_eq!(e.dilation(), 1);
        assert_eq!(e.load(), 1);
    }

    #[test]
    fn corollary_4_tree_into_is_network() {
        let host = SuperCayleyGraph::insertion_selection(5).unwrap();
        let e = tree_into_scg(3, &host, &mut SearchBudget::new(50_000_000)).unwrap();
        assert!(e.dilation() <= 2, "Cor 4: dilation 2 in k-IS");
    }

    #[test]
    fn corollary_4_tree_into_macro_star() {
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let e = tree_into_scg(3, &host, &mut SearchBudget::new(50_000_000)).unwrap();
        assert!(e.dilation() <= 3, "Cor 4: dilation 3 in MS");
    }

    #[test]
    fn corollary_4_tree_into_mis() {
        let host = SuperCayleyGraph::macro_is(2, 2).unwrap();
        let e = tree_into_scg(3, &host, &mut SearchBudget::new(50_000_000)).unwrap();
        assert!(e.dilation() <= 4, "Cor 4: dilation 4 in MIS");
    }

    #[test]
    fn paper_premise_height_2k_minus_5_in_5_star() {
        // Corollary 4's k = 5 premise from [5]: the height-(2k-5) = 5
        // complete binary tree (63 nodes) embeds in the 5-star with
        // dilation 1. Randomized ordering finds a witness instantly.
        let e = tree_into_star(5, 5, &mut SearchBudget::new(2_000_000_000)).unwrap();
        assert_eq!(e.dilation(), 1);
        assert_eq!(e.load(), 1);
        assert_eq!(e.guest().num_nodes(), 63);
    }

    #[test]
    fn oversized_tree_is_rejected() {
        // 2^6-1 = 63 > 24 nodes: impossible in the 4-star.
        let r = tree_into_star(5, 4, &mut SearchBudget::new(1_000));
        assert!(matches!(r, Err(EmbedError::Unsupported { .. })));
    }
}
