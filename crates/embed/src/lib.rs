//! Constant-dilation embeddings in super Cayley graphs (§5 of the paper).
//!
//! The central type is [`Embedding`]: a validated node map plus per-edge
//! routing paths, from which the standard quality metrics (load, expansion,
//! dilation, congestion) are *measured*, not asserted. Constructions:
//!
//! * **Theorems 1–3** — star graphs into `MS`, `RS`, `Complete-RS`, `IS`,
//!   `MIS`, `RIS`, `Complete-RIS` with dilation 3/2/4 and congestion
//!   `max(2n, l)` ([`CayleyEmbedding`]);
//! * **Theorems 6–7** — transposition networks (and bubble-sort graphs)
//!   with dilation 5/7/6/O(1) ([`CayleyEmbedding`]);
//! * **Corollary 4** — complete binary trees ([`tree_into_star`],
//!   [`tree_into_scg`]);
//! * **Corollary 5** — hypercubes ([`hypercube_into_tn`],
//!   [`hypercube_into_star`], [`hypercube_into_scg`]);
//! * **Corollaries 6–7** — meshes and linear arrays
//!   ([`factorial_mesh_into_tn`], [`mesh2d_into_tn`],
//!   [`linear_array_into_star`] and their `_into_scg` compositions).
//!
//! Embeddings compose ([`Embedding::compose`]), which is exactly how the
//! paper derives its corollaries from the theorems.
//!
//! All constructors emit one shared arena-backed representation, the
//! [`EmbeddingIr`] (typed handles, hyperpaths as ranges into a flat path
//! arena, a generic [`EmbedAudit`] auditor); `Embedding` is its thin
//! compatibility view. Fault-aware re-embedding lives on the IR:
//! [`EmbeddingIr::reembed`] re-routes only the hyperpaths a
//! [`FaultSet`](scg_graph::FaultSet) crosses, and [`reembed_scg`] plugs in
//! the plan-cache detour router for super Cayley hosts.
//!
//! # Examples
//!
//! ```
//! use scg_core::{StarGraph, SuperCayleyGraph};
//! use scg_embed::CayleyEmbedding;
//!
//! # fn main() -> Result<(), scg_embed::EmbedError> {
//! let star = StarGraph::new(5)?;
//! let host = SuperCayleyGraph::macro_star(2, 2)?;
//! let e = CayleyEmbedding::build(&star, &host, 10_000)?;
//! assert_eq!(e.embedding().dilation(), 3); // Theorem 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cayley;
mod cube;
mod embedding;
mod error;
mod ir;
mod mesh_embed;
#[cfg(feature = "obs")]
mod obs_hooks;
mod tree;

pub use cayley::CayleyEmbedding;
pub use cube::{cube_dimension_for, hypercube_into_scg, hypercube_into_star, hypercube_into_tn};
pub use embedding::Embedding;
pub use error::EmbedError;
pub use ir::{
    reembed_scg, reembed_scg_rebalanced, EmbedAudit, EmbeddingIr, IrBuilder, PEdge, PNode,
    ReembedReport, TEdge, TNode,
};
pub use mesh_embed::{
    factor_into_exchanges, factorial_coords_to_perm, factorial_mesh_into_scg,
    factorial_mesh_into_tn, linear_array_into_star, mesh2d_into_scg, mesh2d_into_tn,
};
pub use tree::{tree_into_scg, tree_into_star};
