//! Mesh embeddings (Corollaries 6 and 7).
//!
//! Three constructions:
//!
//! * [`linear_array_into_star`] — the `k!`-node linear array as a
//!   Hamiltonian path of the `k`-star (dilation 1, found by search);
//! * [`factorial_mesh_into_tn`] — the `2 × 3 × ⋯ × k` mesh into the `k`-TN
//!   with dilation ≤ 2, load 1, expansion 1, via the inverse-Fisher–Yates
//!   coordinate map (each coordinate step is a conjugated transposition or
//!   3-cycle, i.e. at most two TN links);
//! * [`mesh2d_into_tn`] — any `m1 × m2` mesh with `m1 · m2 = k!` whose side
//!   `m1` is a product of a sub-multiset of `{2, …, k}`, via reflected
//!   mixed-radix Gray codes (each grid step changes one factorial
//!   coordinate by ±1, so dilation ≤ 2 again).
//!
//! Composing with Theorem 6/7 ([`CayleyEmbedding`]) yields the
//! constant-dilation mesh embeddings of Corollaries 6–7 into MS, RS,
//! Complete-RS, MIS, Complete-RIS and IS networks. (The paper reaches
//! dilation 1 into the TN via Latifi–Srimani's construction; ours is
//! dilation ≤ 2 — the substitution is documented in DESIGN.md and the
//! constant-dilation conclusions are unaffected.)

use scg_core::{
    materialize, CayleyNetwork, Generator, StarGraph, SuperCayleyGraph, TranspositionNetwork,
};
use scg_graph::{hamiltonian_path, NodeId, SearchBudget};
use scg_perm::{factorial, MixedRadix, Perm};

use crate::cayley::CayleyEmbedding;
use crate::embedding::Embedding;
use crate::error::EmbedError;
use crate::ir::IrBuilder;

/// Factors a permutation into exchange generators `T_{i,j}` whose product
/// (applied left to right) equals `w`. A cycle of length `m` contributes
/// `m − 1` exchanges, so the output length is `k − (#cycles incl. fixed
/// points)` — the TN distance of `w`.
#[must_use]
pub fn factor_into_exchanges(w: &Perm) -> Vec<Generator> {
    let mut out = Vec::new();
    for cycle in w.cycles() {
        for pair in cycle.windows(2) {
            out.push(Generator::exchange(pair[0] as usize, pair[1] as usize));
        }
    }
    out
}

/// The inverse-Fisher–Yates coordinate map: factorial coordinates
/// `(a_2, …, a_k)` with `a_i ∈ 0..i` to a permutation, by swapping
/// positions `i` and `i − a_i` for `i = k` down to `2`. A bijection from
/// the `2 × 3 × ⋯ × k` mesh onto `S_k`.
///
/// # Panics
///
/// Panics if `digits.len() + 1 != k` or a digit is out of range.
#[must_use]
pub fn factorial_coords_to_perm(digits: &[u64], k: usize) -> Perm {
    assert_eq!(digits.len() + 1, k, "need k - 1 factorial digits");
    let mut p = Perm::identity(k);
    for i in (2..=k).rev() {
        let a = digits[i - 2] as usize;
        assert!(a < i, "digit for radix {i} out of range");
        if a > 0 {
            p = p.swapped(i - a, i).expect("positions within degree"); // scg-allow(SCG001): asserted a < i on the line above, so both positions are in 1..=k
        }
    }
    p
}

/// The `k!`-node linear array embedded along a Hamiltonian path of the
/// `k`-star (dilation 1, load 1, expansion 1).
///
/// # Errors
///
/// * [`EmbedError::HostTooLarge`] — `k! > cap`, reported structurally
///   before any materialization is attempted;
/// * [`EmbedError::Core`] — invalid `k`;
/// * [`EmbedError::SearchInconclusive`] — the path search exceeded
///   `budget`;
/// * [`EmbedError::Unsupported`] — search proved no path from the identity
///   (does not occur: star graphs are Hamiltonian).
pub fn linear_array_into_star(
    k: usize,
    cap: u64,
    budget: &mut SearchBudget,
) -> Result<Embedding, EmbedError> {
    let star = StarGraph::new(k)?;
    let num_nodes = factorial(k);
    if num_nodes > cap {
        return Err(EmbedError::HostTooLarge {
            guest: "linear-array",
            k,
            num_nodes,
            cap,
        });
    }
    #[cfg(feature = "obs")]
    // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
    let _timer = crate::obs_hooks::build_timer("linear-array");
    let host = materialize(&star, cap)?.graph().clone();
    let path = match hamiltonian_path(&host, 0, budget) {
        Ok(Some(p)) => p,
        Ok(None) => {
            return Err(EmbedError::Unsupported {
                reason: format!("no Hamiltonian path from identity in {k}-star"),
            })
        }
        Err(scg_graph::GraphError::BudgetExhausted) => return Err(EmbedError::SearchInconclusive),
        Err(e) => return Err(e.into()),
    };
    let guest = scg_core::linear_array(path.len());
    let node_map: Vec<NodeId> = path;
    let mut builder = IrBuilder::new(guest.clone(), host);
    for (u, v) in guest.edges() {
        builder.push_path(&[node_map[u as usize], node_map[v as usize]]);
    }
    let e = Embedding::from(builder.node_map(node_map).finish()?);
    #[cfg(feature = "obs")]
    crate::obs_hooks::build_done("linear-array", e.dilation());
    Ok(e)
}

/// Builds the embedding induced by mapping each guest-mesh node id to
/// factorial digits and then to a permutation, routing each mesh edge by
/// exchange factorization.
fn mesh_embedding_from_digit_map(
    guest_class: &str,
    guest: scg_graph::DenseGraph,
    k: usize,
    cap: u64,
    digits_of: impl Fn(u64) -> Vec<u64>,
) -> Result<Embedding, EmbedError> {
    #[cfg(feature = "obs")]
    // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
    let _timer = crate::obs_hooks::build_timer(guest_class);
    #[cfg(not(feature = "obs"))]
    let _ = guest_class; // scg-allow(SCG005): feature-gated use; discards a metrics label, not a Result
    let tn = TranspositionNetwork::new(k)?;
    let host = materialize(&tn, cap)?.graph().clone();
    let labels: Vec<Perm> = (0..guest.num_nodes() as u64)
        .map(|x| factorial_coords_to_perm(&digits_of(x), k))
        .collect();
    let node_map: Vec<NodeId> = labels.iter().map(|p| p.rank() as NodeId).collect();
    let mut builder = IrBuilder::new(guest.clone(), host);
    for (u, v) in guest.edges() {
        let (lu, lv) = (labels[u as usize], labels[v as usize]);
        let w = lu.inverse().compose(&lv);
        builder.begin_path(node_map[u as usize]);
        let mut cur = lu;
        for g in factor_into_exchanges(&w) {
            cur = g.apply(&cur).expect("valid exchange"); // scg-allow(SCG001): factor_into_exchanges yields degree-k exchanges only
            builder.push_hop(cur.rank() as NodeId);
        }
        debug_assert_eq!(cur, lv);
        builder.end_path();
    }
    let e = Embedding::from(builder.node_map(node_map).finish()?);
    #[cfg(feature = "obs")]
    crate::obs_hooks::build_done(guest_class, e.dilation());
    Ok(e)
}

/// Corollary 7 guest: the `2 × 3 × ⋯ × k` mesh into the `k`-TN, dilation
/// ≤ 2, load 1, expansion 1.
///
/// # Errors
///
/// * [`EmbedError::Core`] — invalid `k` or TN too large within `cap`.
pub fn factorial_mesh_into_tn(k: usize, cap: u64) -> Result<Embedding, EmbedError> {
    if k < 2 {
        return Err(EmbedError::Unsupported {
            reason: "factorial mesh needs k >= 2".into(),
        });
    }
    let extents: Vec<usize> = (2..=k).collect();
    let guest = scg_core::mesh(&extents);
    let mr = MixedRadix::factorial_system(k);
    mesh_embedding_from_digit_map("factorial-mesh", guest, k, cap, move |x| mr.digits(x))
}

/// Corollary 6 guest: an `m1 × m2` mesh with `m1 · m2 = k!`, where
/// `row_dims` selects the factorial radices forming `m1` (e.g. `&[2, 4]`
/// gives `m1 = 8`, `m2 = k!/8`). Each grid step changes one factorial
/// coordinate by ±1 thanks to reflected Gray coding, so dilation ≤ 2 into
/// the `k`-TN with load 1 and expansion 1.
///
/// # Errors
///
/// * [`EmbedError::Unsupported`] — `row_dims` is not a sub-multiset of
///   `{2, …, k}`;
/// * [`EmbedError::Core`] — TN too large within `cap`.
pub fn mesh2d_into_tn(k: usize, row_dims: &[usize], cap: u64) -> Result<Embedding, EmbedError> {
    let mut is_row = vec![false; k + 1];
    for &d in row_dims {
        if !(2..=k).contains(&d) || is_row[d] {
            return Err(EmbedError::Unsupported {
                reason: format!("row dimension {d} invalid or repeated"),
            });
        }
        is_row[d] = true;
    }
    let row_radices: Vec<u64> = (2..=k).filter(|&d| is_row[d]).map(|d| d as u64).collect();
    let col_radices: Vec<u64> = (2..=k).filter(|&d| !is_row[d]).map(|d| d as u64).collect();
    let m1: u64 = row_radices.iter().product();
    let m2: u64 = col_radices.iter().product();
    debug_assert_eq!(m1 * m2, factorial(k));
    let guest = scg_core::mesh(&[m1 as usize, m2 as usize]);
    let row_mr = MixedRadix::new(row_radices);
    let col_mr = MixedRadix::new(col_radices);
    let row_dims_sorted: Vec<usize> = (2..=k).filter(|&d| is_row[d]).collect();
    let col_dims_sorted: Vec<usize> = (2..=k).filter(|&d| !is_row[d]).collect();
    mesh_embedding_from_digit_map("mesh2d", guest, k, cap, move |id| {
        let x = id % m1;
        let y = id / m1;
        let row_digits = row_mr.gray_digits(x);
        let col_digits = col_mr.gray_digits(y);
        let mut digits = vec![0u64; k - 1];
        for (slot, &dim) in row_dims_sorted.iter().enumerate() {
            digits[dim - 2] = row_digits[slot];
        }
        for (slot, &dim) in col_dims_sorted.iter().enumerate() {
            digits[dim - 2] = col_digits[slot];
        }
        digits
    })
}

/// Corollary 7 composed: the `2 × 3 × ⋯ × k` mesh into a super Cayley host
/// with constant dilation (≤ 2 × the host's Theorem 6/7 TN dilation).
///
/// # Errors
///
/// As [`factorial_mesh_into_tn`] plus [`CayleyEmbedding::build`] failures.
pub fn factorial_mesh_into_scg(host: &SuperCayleyGraph, cap: u64) -> Result<Embedding, EmbedError> {
    let k = host.degree_k();
    let mesh_in_tn = factorial_mesh_into_tn(k, cap)?;
    let tn = TranspositionNetwork::new(k)?;
    let tn_in_host = CayleyEmbedding::build(&tn, host, cap)?;
    mesh_in_tn.compose(tn_in_host.embedding())
}

/// Corollary 6 composed: an `m1 × m2` mesh into a super Cayley host with
/// constant dilation.
///
/// # Errors
///
/// As [`mesh2d_into_tn`] plus [`CayleyEmbedding::build`] failures.
pub fn mesh2d_into_scg(
    host: &SuperCayleyGraph,
    row_dims: &[usize],
    cap: u64,
) -> Result<Embedding, EmbedError> {
    let k = host.degree_k();
    let mesh_in_tn = mesh2d_into_tn(k, row_dims, cap)?;
    let tn = TranspositionNetwork::new(k)?;
    let tn_in_host = CayleyEmbedding::build(&tn, host, cap)?;
    mesh_in_tn.compose(tn_in_host.embedding())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_factorization_reconstructs() {
        for r in [0u64, 1, 100, 719] {
            let w = Perm::from_rank(6, r * 7 % 720).unwrap();
            let seq = factor_into_exchanges(&w);
            let rebuilt = scg_core::apply_path(&Perm::identity(6), &seq).unwrap();
            assert_eq!(rebuilt, w);
            // Length equals TN distance: k - #cycles(incl. fixed).
            let nontrivial: usize = w.cycles().iter().map(Vec::len).sum();
            let cycles = w.cycles().len();
            assert_eq!(seq.len(), nontrivial - cycles);
        }
    }

    #[test]
    fn coordinate_map_is_a_bijection() {
        let mr = MixedRadix::factorial_system(5);
        let mut seen = std::collections::HashSet::new();
        for x in 0..mr.capacity() {
            let p = factorial_coords_to_perm(&mr.digits(x), 5);
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len() as u64, factorial(5));
    }

    #[test]
    fn factorial_mesh_into_tn_has_dilation_2() {
        let e = factorial_mesh_into_tn(5, 1_000).unwrap();
        assert_eq!(e.load(), 1);
        assert!((e.expansion() - 1.0).abs() < 1e-12);
        assert!(e.dilation() <= 2);
        assert!(e.dilation() >= 1);
    }

    #[test]
    fn mesh2d_into_tn_has_dilation_2() {
        // 6 × 20 = 5! ... m1 = 2·3 = 6, m2 = 4·5 = 20.
        let e = mesh2d_into_tn(5, &[2, 3], 1_000).unwrap();
        assert_eq!(e.guest().num_nodes(), 120);
        assert_eq!(e.load(), 1);
        assert!(e.dilation() <= 2);
        // Degenerate splits: 1 × k! (all columns) is the snake linear array.
        let snake = mesh2d_into_tn(5, &[], 1_000).unwrap();
        assert!(snake.dilation() <= 2);
    }

    #[test]
    fn mesh2d_rejects_bad_rows() {
        assert!(mesh2d_into_tn(5, &[7], 1_000).is_err());
        assert!(mesh2d_into_tn(5, &[2, 2], 1_000).is_err());
    }

    #[test]
    fn corollary_7_composed_into_hosts() {
        let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let e = factorial_mesh_into_scg(&ms, 1_000).unwrap();
        assert!(e.dilation() <= 10, "≤ 2 × 5 on MS(2,n)");
        assert_eq!(e.load(), 1);
        let is5 = SuperCayleyGraph::insertion_selection(5).unwrap();
        let e2 = factorial_mesh_into_scg(&is5, 1_000).unwrap();
        assert!(e2.dilation() <= 12, "≤ 2 × 6 on IS");
    }

    #[test]
    fn corollary_6_composed_into_ms() {
        let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let e = mesh2d_into_scg(&ms, &[5], 1_000).unwrap();
        assert_eq!(e.guest().num_nodes(), 120); // 5 × 24 mesh
        assert!(e.dilation() <= 10);
    }

    #[test]
    fn linear_array_along_hamiltonian_path() {
        let e = linear_array_into_star(4, 1_000, &mut SearchBudget::new(10_000_000)).unwrap();
        assert_eq!(e.guest().num_nodes(), 24);
        assert_eq!(e.dilation(), 1);
        assert_eq!(e.load(), 1);
    }
}
