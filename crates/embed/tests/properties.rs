//! Property-based tests for the embedding crate: metrics invariants,
//! composition bounds, and the mesh constructions across arbitrary splits.

use proptest::prelude::*;
use scg_core::{StarGraph, SuperCayleyGraph, TranspositionNetwork};
use scg_embed::{
    factor_into_exchanges, factorial_coords_to_perm, mesh2d_into_tn, CayleyEmbedding,
};
use scg_perm::{factorial, MixedRadix, Perm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exchange_factorization_always_reconstructs(k in 3usize..=8, r in 0u64..40320) {
        let w = Perm::from_rank(k, r % factorial(k)).unwrap();
        let seq = factor_into_exchanges(&w);
        let rebuilt = scg_core::apply_path(&Perm::identity(k), &seq).unwrap();
        prop_assert_eq!(rebuilt, w);
        // Length is the TN distance (monotone under cycle count).
        prop_assert_eq!(seq.len() as u32, scg_core::tn_distance(&w.inverse()));
    }

    #[test]
    fn coordinate_map_bijective_on_random_coords(k in 3usize..=7, x in 0u64..5040) {
        let mr = MixedRadix::factorial_system(k);
        let x = x % mr.capacity();
        let p = factorial_coords_to_perm(&mr.digits(x), k);
        // Injectivity spot-check: a different index maps elsewhere.
        let y = (x + 1) % mr.capacity();
        if x != y {
            let q = factorial_coords_to_perm(&mr.digits(y), k);
            prop_assert_ne!(p, q);
        }
    }

    #[test]
    fn mesh2d_any_split_has_dilation_at_most_2(mask in 0u8..8) {
        // Any subset of {2,3,4} as row dimensions of the 5! mesh.
        let rows: Vec<usize> = [2usize, 3, 4]
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &d)| d)
            .collect();
        let e = mesh2d_into_tn(5, &rows, 1_000).unwrap();
        prop_assert!(e.dilation() <= 2);
        prop_assert_eq!(e.load(), 1);
        prop_assert!((e.expansion() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_embedding_metrics_invariants(pick in 0u8..5) {
        let host = match pick {
            0 => SuperCayleyGraph::macro_star(2, 2).unwrap(),
            1 => SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
            2 => SuperCayleyGraph::insertion_selection(5).unwrap(),
            3 => SuperCayleyGraph::macro_is(2, 2).unwrap(),
            _ => SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
        };
        let star = StarGraph::new(5).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, 1_000).unwrap();
        let e = ce.embedding();
        // Identity node map: load 1, expansion 1, dilation >= 1.
        prop_assert_eq!(e.load(), 1);
        prop_assert!((e.expansion() - 1.0).abs() < 1e-12);
        prop_assert!(e.dilation() >= 1);
        // Mean path length never exceeds dilation, congestion bounds hold.
        prop_assert!(e.mean_path_length() <= e.dilation() as f64);
        prop_assert!(e.congestion() >= 1);
        // Volume check: total traffic equals sum of path lengths.
        let total: usize = e.link_traffic().iter().sum();
        let volume: f64 = e.mean_path_length() * e.guest().num_edges() as f64;
        prop_assert!((total as f64 - volume).abs() < 1e-6);
        // Per-dimension congestion never exceeds total congestion.
        prop_assert!(ce.max_dimension_congestion() <= e.congestion());
    }

    #[test]
    fn tn_embedding_respects_host_symmetry(seed in 0u64..1000) {
        // Traffic on a vertex-transitive host under a label-preserving
        // embedding is generator-periodic: every link of one generator
        // carries the same traffic. Spot-check one generator class.
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let tn = TranspositionNetwork::new(5).unwrap();
        let ce = CayleyEmbedding::build(&tn, &host, 1_000).unwrap();
        let e = ce.embedding();
        let traffic = e.link_traffic();
        let hg = e.host();
        // Pick a random host node and compare its out-link traffic profile
        // (sorted) with node 0's.
        let u = (seed % 120) as u32;
        let mut a: Vec<usize> = hg.edge_range(0).map(|i| traffic[i]).collect();
        let mut b: Vec<usize> = hg.edge_range(u).map(|i| traffic[i]).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
