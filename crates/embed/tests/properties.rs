//! Randomized tests for the embedding crate: metrics invariants,
//! composition bounds, and the mesh constructions across arbitrary splits.
//! Driven by the vendored deterministic PRNG (the workspace builds offline,
//! so `proptest` is not available).

use scg_core::{StarGraph, SuperCayleyGraph, TranspositionNetwork, SMALL_NET_CAP};
use scg_embed::{factor_into_exchanges, factorial_coords_to_perm, mesh2d_into_tn, CayleyEmbedding};
use scg_perm::{factorial, MixedRadix, Perm, XorShift64};

#[test]
fn exchange_factorization_always_reconstructs() {
    let mut rng = XorShift64::new(41);
    for _ in 0..32 {
        let k = 3 + rng.gen_range(6);
        let w = Perm::from_rank(k, rng.gen_range_u64(factorial(k))).unwrap();
        let seq = factor_into_exchanges(&w);
        let rebuilt = scg_core::apply_path(&Perm::identity(k), &seq).unwrap();
        assert_eq!(rebuilt, w);
        // Length is the TN distance (monotone under cycle count).
        assert_eq!(seq.len() as u32, scg_core::tn_distance(&w.inverse()));
    }
}

#[test]
fn coordinate_map_bijective_on_random_coords() {
    let mut rng = XorShift64::new(42);
    for _ in 0..32 {
        let k = 3 + rng.gen_range(5);
        let mr = MixedRadix::factorial_system(k);
        let x = rng.gen_range_u64(mr.capacity());
        let p = factorial_coords_to_perm(&mr.digits(x), k);
        // Injectivity spot-check: a different index maps elsewhere.
        let y = (x + 1) % mr.capacity();
        if x != y {
            let q = factorial_coords_to_perm(&mr.digits(y), k);
            assert_ne!(p, q);
        }
    }
}

#[test]
fn mesh2d_any_split_has_dilation_at_most_2() {
    for mask in 0u8..8 {
        // Any subset of {2,3,4} as row dimensions of the 5! mesh.
        let rows: Vec<usize> = [2usize, 3, 4]
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &d)| d)
            .collect();
        let e = mesh2d_into_tn(5, &rows, SMALL_NET_CAP).unwrap();
        assert!(e.dilation() <= 2);
        assert_eq!(e.load(), 1);
        assert!((e.expansion() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn star_embedding_metrics_invariants() {
    for pick in 0u8..5 {
        let host = match pick {
            0 => SuperCayleyGraph::macro_star(2, 2).unwrap(),
            1 => SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
            2 => SuperCayleyGraph::insertion_selection(5).unwrap(),
            3 => SuperCayleyGraph::macro_is(2, 2).unwrap(),
            _ => SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
        };
        let star = StarGraph::new(5).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, SMALL_NET_CAP).unwrap();
        let e = ce.embedding();
        // Identity node map: load 1, expansion 1, dilation >= 1.
        assert_eq!(e.load(), 1);
        assert!((e.expansion() - 1.0).abs() < 1e-12);
        assert!(e.dilation() >= 1);
        // Mean path length never exceeds dilation, congestion bounds hold.
        assert!(e.mean_path_length() <= e.dilation() as f64);
        assert!(e.congestion() >= 1);
        // Volume check: total traffic equals sum of path lengths.
        let total: usize = e.link_traffic().iter().sum();
        let volume: f64 = e.mean_path_length() * e.guest().num_edges() as f64;
        assert!((total as f64 - volume).abs() < 1e-6);
        // Per-dimension congestion never exceeds total congestion.
        assert!(ce.max_dimension_congestion() <= e.congestion());
    }
}

#[test]
fn tn_embedding_respects_host_symmetry() {
    // Traffic on a vertex-transitive host under a label-preserving
    // embedding is generator-periodic: every link of one generator
    // carries the same traffic. Spot-check random generator classes.
    let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let tn = TranspositionNetwork::new(5).unwrap();
    let ce = CayleyEmbedding::build(&tn, &host, SMALL_NET_CAP).unwrap();
    let e = ce.embedding();
    let traffic = e.link_traffic();
    let hg = e.host();
    let mut rng = XorShift64::new(43);
    for _ in 0..32 {
        // Pick a random host node and compare its out-link traffic profile
        // (sorted) with node 0's.
        let u = rng.gen_range(120) as u32;
        let mut a: Vec<usize> = hg.edge_range(0).map(|i| traffic[i]).collect();
        let mut b: Vec<usize> = hg.edge_range(u).map(|i| traffic[i]).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
