//! A minimal wall-clock benchmark harness on `std::time::Instant`.
//!
//! The workspace builds with no network access, so Criterion is not
//! available; this module provides the small subset the benches need —
//! named groups, warmed-up timed closures, and batched timing with
//! untimed per-iteration setup — with a plain-text report. It is not a
//! statistics engine: numbers are mean/min/max over a fixed time budget,
//! good for spotting order-of-magnitude regressions, not nanosecond
//! deltas.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark time budget once warmed up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);
/// Hard cap on measured iterations (cheap routines).
const MAX_ITERS: u32 = 10_000;

/// One measured benchmark: iteration count and per-iteration times.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Number of timed iterations.
    pub iters: u32,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl Measurement {
    fn from_times(times: &[Duration]) -> Self {
        let total: Duration = times.iter().sum();
        Measurement {
            iters: times.len() as u32,
            mean: total / times.len() as u32,
            min: *times.iter().min().expect("at least one iteration"),
            max: *times.iter().max().expect("at least one iteration"),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of benchmarks, reporting to stdout as it runs.
#[derive(Debug)]
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group, printing its header.
    #[must_use]
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
        }
    }

    /// Times `routine` repeatedly after a warm-up and prints one line.
    /// The routine's result is `black_box`ed so it cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, id: &str, mut routine: impl FnMut() -> R) -> Measurement {
        // Warm up (also faults in caches the routine depends on).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
        }
        let mut times = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < MEASURE_BUDGET && times.len() < MAX_ITERS as usize {
            let t = Instant::now();
            black_box(routine());
            times.push(t.elapsed());
        }
        let m = Measurement::from_times(&times);
        println!(
            "{}/{id}: mean {} (min {}, max {}, {} iters)",
            self.name,
            fmt_duration(m.mean),
            fmt_duration(m.min),
            fmt_duration(m.max),
            m.iters
        );
        m
    }

    /// As [`Group::bench`], but runs an untimed `setup` before every timed
    /// iteration — the replacement for Criterion's `iter_batched`.
    pub fn bench_batched<I, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) -> Measurement {
        let warm_start = Instant::now();
        loop {
            black_box(routine(setup()));
            if warm_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
        }
        let mut times = Vec::new();
        let mut measured = Duration::ZERO;
        while measured < MEASURE_BUDGET && times.len() < MAX_ITERS as usize {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            measured += dt;
            times.push(dt);
        }
        let m = Measurement::from_times(&times);
        println!(
            "{}/{id}: mean {} (min {}, max {}, {} iters)",
            self.name,
            fmt_duration(m.mean),
            fmt_duration(m.min),
            fmt_duration(m.max),
            m.iters
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_summarizes_times() {
        let times = [
            Duration::from_micros(1),
            Duration::from_micros(3),
            Duration::from_micros(2),
        ];
        let m = Measurement::from_times(&times);
        assert_eq!(m.iters, 3);
        assert_eq!(m.mean, Duration::from_micros(2));
        assert_eq!(m.min, Duration::from_micros(1));
        assert_eq!(m.max, Duration::from_micros(3));
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
