//! Experiment `tab_networks`: topological properties of every network
//! class (§2's "optimal diameters given their node degree, and small node
//! degrees") — size, degree, measured diameter and mean distance, the
//! universal Moore bound `DL(d, N)`, directedness, and the
//! vertex-transitivity cross-check.

use scg_bench::{all_class_hosts_k5, f3, Table};
use scg_core::{BubbleSortGraph, NetworkReport, StarGraph, SuperCayleyGraph, TranspositionNetwork};

fn push(t: &mut Table, r: &NetworkReport) {
    t.row(&[
        r.name.clone(),
        r.k.to_string(),
        r.num_nodes.to_string(),
        r.degree.to_string(),
        r.diameter.to_string(),
        f3(r.mean_distance),
        r.moore_bound.to_string(),
        if r.inverse_closed {
            "undirected"
        } else {
            "directed"
        }
        .to_string(),
        if r.transitive_check { "yes" } else { "NO" }.to_string(),
    ]);
}

fn main() {
    const CAP: u64 = 50_000;
    let mut t = Table::new(&[
        "network",
        "k",
        "N",
        "degree",
        "diameter",
        "mean dist",
        "DL(d,N)",
        "links",
        "transitive",
    ]);
    // Reference Cayley networks.
    for k in 4..=7 {
        let r = NetworkReport::measure(&StarGraph::new(k).unwrap(), CAP).unwrap();
        push(&mut t, &r);
    }
    for k in 4..=6 {
        push(
            &mut t,
            &NetworkReport::measure(&BubbleSortGraph::new(k).unwrap(), CAP).unwrap(),
        );
        push(
            &mut t,
            &NetworkReport::measure(&TranspositionNetwork::new(k).unwrap(), CAP).unwrap(),
        );
    }
    // All ten classes at k = 5.
    for host in all_class_hosts_k5().unwrap() {
        push(&mut t, &NetworkReport::measure(&host, CAP).unwrap());
    }
    // Larger shapes at k = 7 for the undirected emulation-capable classes.
    for host in [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::macro_star(2, 3).unwrap(),
        SuperCayleyGraph::rotation_star(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
        SuperCayleyGraph::macro_is(3, 2).unwrap(),
        SuperCayleyGraph::rotation_is(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
    ] {
        push(&mut t, &NetworkReport::measure(&host, CAP).unwrap());
    }
    println!("== Network properties (paper §2) ==\n");
    print!("{}", t.render());
    println!("\nDL(d,N) is the directed Moore diameter lower bound; the paper's");
    println!("'optimal diameter' claims mean diameter = Θ(DL) with small constants.");

    // Cross-check: single-source statistics (used above via transitivity)
    // equal full all-pairs statistics, computed in parallel, on a 5040-node
    // instance.
    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    let mat = scg_core::materialize(&ms, CAP).unwrap();
    let g = mat.graph();
    let single = scg_graph::DistanceStats::single_source(g, 0);
    let all = scg_graph::DistanceStats::all_pairs_parallel(g, 8);
    assert_eq!(single.diameter, all.diameter);
    assert!((single.mean - all.mean).abs() < 1e-9);
    println!(
        "\nall-pairs cross-check on MS(3,2): diameter {} and mean {:.3} match the\nsingle-source figures (vertex transitivity confirmed exactly).",
        all.diameter, all.mean
    );
}
