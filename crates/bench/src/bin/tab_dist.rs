//! Experiment `tab_dist`: distance distributions behind the §2 diameter
//! claims. For each network, the histogram of node counts per distance from
//! the identity — the raw data behind diameter/mean-distance comparisons —
//! printed as CSV for plotting.

use scg_bench::all_class_hosts_k5;
use scg_core::{materialize, CayleyNetwork, StarGraph, SuperCayleyGraph};
use scg_graph::DistanceStats;

fn print_csv(name: &str, hist: &[u64]) {
    print!("{name}");
    for c in hist {
        print!(",{c}");
    }
    println!();
}

fn main() {
    const CAP: u64 = 50_000;
    println!("network,count_at_distance_0,1,2,...");
    for k in 4..=7 {
        let star = StarGraph::new(k).unwrap();
        let mat = materialize(&star, CAP).unwrap();
        print_csv(
            &star.name(),
            &DistanceStats::single_source(mat.graph(), 0).histogram,
        );
    }
    for host in all_class_hosts_k5().unwrap() {
        let mat = materialize(&host, CAP).unwrap();
        print_csv(
            &host.name(),
            &DistanceStats::single_source(mat.graph(), 0).histogram,
        );
    }
    for host in [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::macro_star(2, 3).unwrap(),
        SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
        SuperCayleyGraph::macro_is(3, 2).unwrap(),
    ] {
        let mat = materialize(&host, CAP).unwrap();
        print_csv(
            &host.name(),
            &DistanceStats::single_source(mat.graph(), 0).histogram,
        );
    }
    eprintln!("\n(rows are node counts at distances 0..diameter from the identity;");
    eprintln!("the rightmost nonzero column index is the diameter of tab_networks)");
}
