//! Experiment `tab_obs`: the first real entries of the bench trajectory.
//!
//! Runs an instrumented sweep over all ten Table II classes (k = 5, 120
//! nodes) with the `obs` feature's hooks live: every class is materialized
//! twice through the shared topology cache (one miss, one hit), routed
//! over a fixed-seed pair sample fault-free and under `degree − 1` node
//! faults, and simulated end to end on the link-level simulator. The
//! summary table plus the full metric exposition is written to
//! `results/tab_obs.txt`, and the raw snapshot to
//! `results/tab_obs_metrics.{txt,json}` via [`scg_obs::write_snapshot`].
//!
//! Build with the feature: `cargo run --release -p scg-bench --features
//! obs --bin tab_obs`.

#[cfg(not(feature = "obs"))]
fn main() {
    eprintln!("tab_obs needs the observability hooks compiled in; rerun with:");
    eprintln!("    cargo run --release -p scg-bench --features obs --bin tab_obs");
}

#[cfg(feature = "obs")]
fn main() {
    use scg_bench::{all_class_hosts_k5, f3, Table};
    use scg_core::{materialize, scg_route_faulty, CayleyNetwork, SMALL_NET_CAP};
    use scg_emu::{Packet, PortModel, SyncSim, TableRouter};
    use scg_graph::{FaultSet, NodeId, SurvivorView};
    use scg_obs::{EventTrace, Registry, Snapshot};
    use scg_perm::XorShift64;

    const PAIRS: usize = 40;

    println!("== Observability sweep: cache, routing, and sim metrics, all ten classes ==\n");
    let reg = Registry::global();
    let mut t = Table::new(&[
        "network",
        "nodes",
        "cache h/m",
        "route mean hops",
        "faulty mean hops",
        "detours",
        "fallbacks",
        "delivered",
        "sim steps",
        "retries",
        "audit count",
    ]);

    for net in all_class_hosts_k5().expect("k=5 classes") {
        let name = net.name();
        let labels = [("network", name.as_str())];
        // One miss then one hit on the shared cache, both visible in the
        // per-class hit/miss counters.
        let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
        let mat2 = materialize(&net, SMALL_NET_CAP).expect("cache hit");
        assert!(std::sync::Arc::ptr_eq(mat.graph(), mat2.graph()));

        let mut rng = XorShift64::new(0x0B5 + mat.degree_k() as u64);
        let degree = {
            let mut v = mat.graph().out_neighbors(0).to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        let faults = FaultSet::random_nodes(mat.num_nodes(), degree - 1, &[], &mut rng);
        let view = SurvivorView::new(mat.graph(), &faults);
        let audits_before = reg
            .counter(
                "scg_fault_audits_total",
                &[("audit", "strong_connectivity")],
            )
            .get();
        assert!(
            view.is_strongly_connected(),
            "degree-1 faults stay connected"
        );

        // Fixed-seed live pair sample shared by routing and sim.
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(PAIRS);
        while pairs.len() < PAIRS {
            let s = rng.gen_range(mat.num_nodes()) as NodeId;
            let d = rng.gen_range(mat.num_nodes()) as NodeId;
            if s != d && view.is_alive(s) && view.is_alive(d) {
                pairs.push((s, d));
            }
        }

        // Fault-free and faulty routing sweeps feed the per-class
        // histograms through the scg-core hooks.
        let empty = FaultSet::new();
        for &(s, d) in &pairs {
            let from = mat.node_label(s).expect("rank in range");
            let to = mat.node_label(d).expect("rank in range");
            scg_route_faulty(&net, &mat, &from, &to, &empty).expect("fault-free route");
            scg_route_faulty(&net, &mat, &from, &to, &faults).expect("survivors connected");
        }

        // End-to-end sim over the survivor tables.
        let router = TableRouter::new_with_faults(mat.graph(), &faults).expect("small degrees");
        let mut sim = SyncSim::new(mat.graph(), PortModel::AllPort);
        for &node in &faults.failed_nodes() {
            sim.fail_node(node).expect("fault in range");
        }
        let dropped_at_faults = sim.in_flight(); // 0: no traffic yet
        assert_eq!(dropped_at_faults, 0);
        for &(s, d) in &pairs {
            let pkt = Packet {
                src: s,
                dst: d,
                payload: 0,
            };
            sim.inject(s, pkt, &router).expect("live pair routable");
        }
        let stats = sim.run(&router, 1_000_000).expect("bounded run");

        // Read the class-labeled families back out of the registry.
        let hits = reg.counter("scg_topology_cache_hits_total", &labels).get();
        let misses = reg
            .counter("scg_topology_cache_misses_total", &labels)
            .get();
        let plan = reg.histogram(
            "scg_route_faulty_hops",
            &labels,
            &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32],
        );
        let detours = reg.counter("scg_route_detours_total", &labels).get();
        let fallbacks = reg.counter("scg_route_fallbacks_total", &labels).get();
        let audits = reg
            .counter(
                "scg_fault_audits_total",
                &[("audit", "strong_connectivity")],
            )
            .get()
            - audits_before;
        let clean_mean = {
            // Fault-free half of the sweep, from the plan-hops family.
            let h = reg.histogram(
                "scg_route_plan_hops",
                &labels,
                &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32],
            );
            h.mean()
        };
        t.row(&[
            name.clone(),
            mat.num_nodes().to_string(),
            format!("{hits}/{misses}"),
            f3(clean_mean),
            f3(plan.mean()),
            detours.to_string(),
            fallbacks.to_string(),
            format!("{}/{}", stats.delivered, PAIRS),
            stats.steps.to_string(),
            stats.retried.to_string(),
            audits.to_string(),
        ]);
    }

    let table = t.render();
    print!("{table}");

    // Embedding-engine sweep: every guest family builds through the
    // arena-backed IR with the embed hooks live, and each class gets one
    // fault-aware re-embedding (single failed host node not carrying a
    // guest node — the Corollary 5 cube guest is sparse, so one always
    // exists).
    println!("\n== Embedding engine: IR builds and fault-aware re-embedding ==\n");
    {
        use scg_graph::SearchBudget;

        let cap = SMALL_NET_CAP;
        scg_embed::hypercube_into_tn(5, cap).expect("Corollary 5 guest");
        scg_embed::hypercube_into_star(5, cap).expect("cube into star");
        scg_embed::factorial_mesh_into_tn(5, cap).expect("Corollary 7 guest");
        scg_embed::mesh2d_into_tn(5, &[2, 3], cap).expect("Corollary 6 guest");
        scg_embed::linear_array_into_star(5, cap, &mut SearchBudget::new(100_000_000))
            .expect("Hamiltonian path in 5-star");
        scg_embed::tree_into_star(3, 5, &mut SearchBudget::new(100_000_000))
            .expect("Corollary 4 guest");

        for net in all_class_hosts_k5().expect("k=5 classes") {
            let e = scg_embed::hypercube_into_scg(&net, cap).expect("Corollary 5 composition");
            let ir = e.into_ir();
            let mat = materialize(&net, cap).expect("cached");
            let mapped: std::collections::HashSet<NodeId> = ir.node_map().iter().copied().collect();
            // Prefer a victim in the interior of some hyperpath so the
            // re-embedding actually re-routes; any free node otherwise.
            let victim = (0..ir.num_program_edges())
                .flat_map(|e| {
                    let p = ir.hyperpath_at(e);
                    p[1..p.len() - 1].to_vec()
                })
                .find(|v| !mapped.contains(v))
                .or_else(|| (0..mat.num_nodes() as NodeId).find(|v| !mapped.contains(v)))
                .expect("sparse guest leaves free host nodes");
            let mut faults = FaultSet::new();
            faults.fail_node(victim);
            let r = scg_embed::reembed_scg(&ir, &net, &mat, &faults)
                .expect("single-node fault is re-embeddable");
            assert_eq!(r.load(), ir.load(), "load preserved");
        }
    }

    let guest_labels: Vec<String> = {
        use scg_core::{StarGraph, TranspositionNetwork};
        let mut v = vec![
            "hypercube".to_string(),
            "factorial-mesh".to_string(),
            "mesh2d".to_string(),
            "linear-array".to_string(),
            "tree".to_string(),
        ];
        v.push(StarGraph::new(5).expect("valid k").name());
        v.push(TranspositionNetwork::new(5).expect("valid k").name());
        v
    };
    let mut et = Table::new(&["guest", "builds", "build mean us", "dilation mean"]);
    for guest in &guest_labels {
        let labels = [("guest", guest.as_str())];
        let builds = reg.counter("scg_embed_builds_total", &labels).get();
        if builds == 0 {
            continue;
        }
        let micros = reg.histogram(
            "scg_embed_build_micros",
            &labels,
            &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
        );
        let dil = reg.histogram(
            "scg_embed_dilation",
            &labels,
            &[1, 2, 3, 4, 5, 6, 7, 8, 12, 16],
        );
        et.row(&[
            guest.clone(),
            builds.to_string(),
            f3(micros.mean()),
            f3(dil.mean()),
        ]);
    }
    let embed_table = et.render();
    print!("{embed_table}");
    let reembeds = reg.counter("scg_embed_reembed_total", &[]).get();
    let rerouted = reg.counter("scg_embed_reembed_rerouted_total", &[]).get();
    println!("\nre-embeddings: {reembeds} (hyperpaths re-routed: {rerouted})");

    let snap = reg.snapshot();
    let results = std::path::Path::new("results");
    let (txt, json) =
        scg_obs::write_snapshot(results, "tab_obs_metrics", &snap).expect("results/ writable");
    let trace_lines = EventTrace::global().len();

    let mut report = String::new();
    report.push_str(
        "== Observability sweep: cache, routing, and sim metrics, all ten classes ==\n\n",
    );
    report.push_str(&table);
    report.push_str("\nEvery class shows one cache miss and one-or-more hits (later classes\n");
    report.push_str("reuse nothing: names differ), 100% delivery over survivor tables at\n");
    report.push_str("degree-1 node faults, and per-class hop histograms below. Wall-time\n");
    report.push_str("histograms (materialize, audits) vary by machine; counts do not.\n\n");
    report.push_str("== Embedding engine: IR builds and fault-aware re-embedding ==\n\n");
    report.push_str(&embed_table);
    report.push_str(&format!(
        "\nre-embeddings: {reembeds} (hyperpaths re-routed: {rerouted})\n"
    ));
    report.push_str("\nEach guest family builds through the shared arena-backed EmbeddingIr\n");
    report.push_str("with per-class build timers and dilation histograms; every host class\n");
    report.push_str("survives a single-node-fault re-embedding of the Corollary 5 cube\n");
    report.push_str("guest (load preserved; only crossing hyperpaths are re-routed).\n\n");
    report.push_str("== Metric exposition (scg_obs snapshot) ==\n\n");
    report.push_str(&snap.to_text());
    std::fs::write(results.join("tab_obs.txt"), &report).expect("results/ writable");

    // The exported JSON must parse back to the identical snapshot —
    // the exporter is only trustworthy if its output round-trips.
    let body = std::fs::read_to_string(&json).expect("json readable");
    assert_eq!(
        Snapshot::from_json(&body).expect("exporter output parses"),
        snap
    );
    println!(
        "\nwrote results/tab_obs.txt, {}, {}",
        txt.display(),
        json.display()
    );
    println!("trace buffer holds {trace_lines} events");
}
