//! Experiment `tab_traffic`: the paper's closing claim — *"the traffic on
//! all the links of suitably constructed super Cayley graphs is uniform
//! within a constant factor for all algorithms considered in this paper"*.
//! Measures the max/mean link-traffic balance ratio for (a) the star-graph
//! embeddings, (b) the all-port emulation schedules, (c) simulated total
//! exchange, and (d) the greedy multinode broadcast.

use scg_bench::{f3, Table};
use scg_comm::{mnb_all_port, te_all_port};
use scg_core::{CayleyNetwork, StarGraph, SuperCayleyGraph};
use scg_embed::CayleyEmbedding;
use scg_emu::{AllPortSchedule, TrafficSummary};

fn main() {
    const CAP: u64 = 50_000;
    let mut t = Table::new(&[
        "algorithm",
        "host",
        "links",
        "max",
        "mean",
        "balance max/mean",
    ]);
    println!("== Link-traffic uniformity (the paper's balance claim) ==\n");

    // (a) Star embedding traffic (all k-1 dimensions used equally often).
    for host in [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
        SuperCayleyGraph::macro_is(3, 2).unwrap(),
    ] {
        let star = StarGraph::new(host.degree_k()).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        let s =
            TrafficSummary::from_counts(ce.embedding().link_traffic().iter().map(|&c| c as u64));
        t.row(&[
            "star embedding".into(),
            host.name(),
            s.links.to_string(),
            s.max.to_string(),
            f3(s.mean),
            f3(s.balance_ratio()),
        ]);
    }

    // (b) All-port emulation schedule link loads.
    for host in [
        SuperCayleyGraph::macro_star(5, 3).unwrap(),
        SuperCayleyGraph::complete_rotation_star(5, 3).unwrap(),
        SuperCayleyGraph::macro_is(4, 3).unwrap(),
    ] {
        let sched = AllPortSchedule::build(&host).unwrap();
        let s = TrafficSummary::from_counts(sched.link_loads());
        t.row(&[
            "all-port schedule".into(),
            host.name(),
            s.links.to_string(),
            s.max.to_string(),
            f3(s.mean),
            f3(s.balance_ratio()),
        ]);
    }

    // (c) Simulated total exchange.
    for host in [
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
    ] {
        let r = te_all_port(&host, 1_000, 1_000_000).unwrap();
        let s = r.traffic.expect("all-port TE records traffic");
        t.row(&[
            "total exchange (sim)".into(),
            host.name(),
            s.links.to_string(),
            s.max.to_string(),
            f3(s.mean),
            f3(s.balance_ratio()),
        ]);
    }

    // (d) Greedy MNB generator usage (per-link by vertex symmetry).
    for host in [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
    ] {
        let r = mnb_all_port(&host, CAP).unwrap();
        let s = TrafficSummary::from_counts(r.generator_uses.iter().copied());
        t.row(&[
            "multinode broadcast".into(),
            host.name(),
            s.links.to_string(),
            s.max.to_string(),
            f3(s.mean),
            f3(s.balance_ratio()),
        ]);
    }

    print!("{}", t.render());
    println!("\nBalance ratios stay below ~2 across algorithms and hosts, matching");
    println!("the paper's 'uniform within a constant factor' claim.");
}
