//! Experiment `tab_faults`: graceful degradation under fail-stop node
//! faults. For every Table II class (k = 5, 120 nodes) and every fault
//! count `0 .. degree`, audits survivor connectivity and measures
//!
//! * the delivered ratio of the link-level simulator with *stale* routing
//!   tables (built fault-free, deflection retries only) vs *refreshed*
//!   survivor tables;
//! * the `scg_route_faulty` curves: mean stretch over the survivor-graph
//!   shortest path, detour and fallback counts.
//!
//! Connectivity equals the graph degree (Cayley-graph fault tolerance), so
//! every row with `faults < degree` must stay connected and the refreshed
//! router must deliver 100%.

use scg_bench::{all_class_hosts_k5, f3, Table};
use scg_core::{materialize, scg_route_faulty, CayleyNetwork, SMALL_NET_CAP};
use scg_emu::{Packet, PortModel, SyncSim, TableRouter};
use scg_graph::{FaultSet, NodeId, SurvivorView};
use scg_perm::XorShift64;

const PAIRS: usize = 40;

fn main() {
    println!("== Fault sweep: delivered ratio and stretch, 0..degree node faults ==\n");
    let mut t = Table::new(&[
        "network",
        "deg",
        "faults",
        "connected",
        "stale dlvr",
        "stale retry",
        "fresh dlvr",
        "stretch",
        "detours",
        "fallbacks",
    ]);
    for net in all_class_hosts_k5().expect("k=5 classes") {
        let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
        let graph = mat.graph();
        // Graph-theoretic degree: distinct neighbors (IS-family duplicates
        // I_2), uniform by vertex-transitivity.
        let degree = {
            let mut v = graph.out_neighbors(0).to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        let stale = TableRouter::new(graph).expect("small degrees");
        for f in 0..degree {
            let mut rng = XorShift64::new(0xFA57 + f as u64);
            let faults = FaultSet::random_nodes(mat.num_nodes(), f, &[], &mut rng);
            let view = SurvivorView::new(graph, &faults);
            let connected = view.is_strongly_connected();

            // Sampled live pairs, shared by all three measurements.
            let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(PAIRS);
            while pairs.len() < PAIRS {
                let s = rng.gen_range(mat.num_nodes()) as NodeId;
                let d = rng.gen_range(mat.num_nodes()) as NodeId;
                if s != d && view.is_alive(s) && view.is_alive(d) {
                    pairs.push((s, d));
                }
            }

            let run = |router: &TableRouter| {
                let mut sim = SyncSim::new(graph, PortModel::AllPort);
                for &node in &faults.failed_nodes() {
                    sim.fail_node(node).expect("fault in range");
                }
                for &(s, d) in &pairs {
                    let pkt = Packet {
                        src: s,
                        dst: d,
                        payload: 0,
                    };
                    if sim.inject(s, pkt, router).is_err() {
                        // Unreachable under this router: an undeliverable
                        // sample counts against the ratio as a drop.
                    }
                }
                let injected = sim.in_flight();
                let stats = sim.run(router, 1_000_000).expect("bounded run");
                let lost_at_inject = PAIRS as u64 - injected.min(PAIRS as u64);
                let total = stats.delivered + stats.dropped + stats.undelivered + lost_at_inject;
                let ratio = if total == 0 {
                    1.0
                } else {
                    stats.delivered as f64 / total as f64
                };
                (ratio, stats.retried)
            };
            let (stale_ratio, stale_retried) = run(&stale);
            let fresh = TableRouter::new_with_faults(graph, &faults).expect("small degrees");
            let (fresh_ratio, _) = run(&fresh);

            // scg_route_faulty curves over the same pairs.
            let (mut stretch_sum, mut stretch_n) = (0.0f64, 0u32);
            let (mut detours, mut fallbacks) = (0u32, 0u32);
            for &(s, d) in &pairs {
                let from = mat.node_label(s).expect("rank in range");
                let to = mat.node_label(d).expect("rank in range");
                let Ok(routed) = scg_route_faulty(&net, &mat, &from, &to, &faults) else {
                    continue; // disconnected pair (only possible if !connected)
                };
                let dist = view.bfs_distances(s)[d as usize];
                if dist > 0 && dist != scg_graph::UNREACHABLE {
                    stretch_sum += routed.len() as f64 / f64::from(dist);
                    stretch_n += 1;
                }
                detours += routed.detours as u32;
                fallbacks += u32::from(routed.fallback_used);
            }
            t.row(&[
                net.name(),
                degree.to_string(),
                f.to_string(),
                if connected { "yes".into() } else { "NO".into() },
                f3(stale_ratio),
                stale_retried.to_string(),
                f3(fresh_ratio),
                f3(stretch_sum / f64::from(stretch_n.max(1))),
                detours.to_string(),
                fallbacks.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!("\nConnectivity = degree: every sweep stays connected below degree faults,");
    println!("refreshed tables deliver 100%, and stale-table deflection degrades gracefully");
    println!("(drops, never hangs). Stretch is vs the survivor-graph shortest path.");
}
