//! Validates a `results/BENCH_*.json` artifact: it must parse through the
//! shared [`scg_obs::json`] parser (integers only, no trailing data) and,
//! for routing artifacts, carry a well-formed acceptance record.
//!
//! Usage: `check_bench_json <path> [<path>...]` — exits nonzero with a
//! message on the first malformed file.

use std::process::ExitCode;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = scg_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let top = v.as_object(0).map_err(|e| format!("{path}: {e}"))?;
    let bench = top
        .get("bench")
        .ok_or_else(|| format!("{path}: missing \"bench\" field"))?
        .as_string(0)
        .map_err(|e| format!("{path}: {e}"))?;
    if bench == "bench_routing" {
        let classes = top
            .get("classes")
            .ok_or_else(|| format!("{path}: missing \"classes\""))?
            .as_array(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if classes.is_empty() {
            return Err(format!("{path}: empty class sweep"));
        }
        let acc = top
            .get("acceptance")
            .ok_or_else(|| format!("{path}: missing \"acceptance\""))?
            .as_object(0)
            .map_err(|e| format!("{path}: {e}"))?;
        for field in [
            "legacy_single_ns",
            "scg_route_single_ns",
            "planner_single_ns",
            "packed_single_ns",
            "speedup_x1000",
        ] {
            acc.get(field)
                .ok_or_else(|| format!("{path}: acceptance missing \"{field}\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))?;
        }
        let k = acc
            .get("k")
            .ok_or_else(|| format!("{path}: acceptance missing \"k\""))?
            .as_u64(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if k < 9 {
            return Err(format!("{path}: acceptance class has k = {k} < 9"));
        }
        // The packed-kernel regression gate: the bit-packed star-sort must
        // not fall behind the byte-array planner baseline it replaced (the
        // bench bakes mode-appropriate timer slack into the flag).
        let flag = acc
            .get("packed_le_planner")
            .ok_or_else(|| format!("{path}: acceptance missing \"packed_le_planner\""))?
            .as_u64(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if flag != 1 {
            return Err(format!(
                "{path}: packed kernel regressed past the planner baseline \
                 (packed_le_planner = {flag}, want 1)"
            ));
        }
        // The parallel-batch regression gate: `route_batch` at full thread
        // count must not fall behind its sequential leg (the adaptive
        // small-batch threshold makes this hold even on one core; the
        // bench bakes mode-appropriate slack into the flag).
        let seq = acc
            .get("batch_seq_pairs_per_s")
            .ok_or_else(|| format!("{path}: acceptance missing \"batch_seq_pairs_per_s\""))?
            .as_u64(0)
            .map_err(|e| format!("{path}: {e}"))?;
        let par = acc
            .get("batch_par_pairs_per_s")
            .ok_or_else(|| format!("{path}: acceptance missing \"batch_par_pairs_per_s\""))?
            .as_u64(0)
            .map_err(|e| format!("{path}: {e}"))?;
        let batch_flag = acc
            .get("batch_par_ge_seq")
            .ok_or_else(|| format!("{path}: acceptance missing \"batch_par_ge_seq\""))?
            .as_u64(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if batch_flag != 1 {
            return Err(format!(
                "{path}: parallel batch regressed past sequential \
                 (batch_par_ge_seq = {batch_flag}, want 1)"
            ));
        }
        let mode = top
            .get("mode")
            .ok_or_else(|| format!("{path}: missing \"mode\""))?
            .as_string(0)
            .map_err(|e| format!("{path}: {e}"))?;
        // Recheck the full-mode slack independently of the flag so a
        // bench binary with a broken comparison can't self-certify.
        if mode == "full" && par * 100 < seq * 90 {
            return Err(format!(
                "{path}: parallel batch at {par} pairs/s is below 90% of \
                 sequential {seq} pairs/s"
            ));
        }
    }
    if bench == "bench_serve" {
        let mode = top
            .get("mode")
            .ok_or_else(|| format!("{path}: missing \"mode\""))?
            .as_string(0)
            .map_err(|e| format!("{path}: {e}"))?;
        let degraded = top
            .get("degraded")
            .ok_or_else(|| format!("{path}: missing \"degraded\""))?
            .as_object(0)
            .map_err(|e| format!("{path}: {e}"))?;
        let dfield = |name: &str| -> Result<u64, String> {
            degraded
                .get(name)
                .ok_or_else(|| format!("{path}: degraded missing \"{name}\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))
        };
        let requests = dfield("requests")?;
        let delivered = dfield("delivered")?;
        let refused = dfield("refused")?;
        if delivered + refused != requests {
            return Err(format!(
                "{path}: degraded pairs unaccounted for \
                 ({delivered} + {refused} != {requests})"
            ));
        }
        let acc = top
            .get("acceptance")
            .ok_or_else(|| format!("{path}: missing \"acceptance\""))?
            .as_object(0)
            .map_err(|e| format!("{path}: {e}"))?;
        let afield = |name: &str| -> Result<u64, String> {
            acc.get(name)
                .ok_or_else(|| format!("{path}: acceptance missing \"{name}\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))
        };
        for flag in ["qps_ge_floor", "batch_p99_le_slo", "degraded_accounted"] {
            let v = afield(flag)?;
            if v != 1 {
                return Err(format!("{path}: acceptance flag \"{flag}\" is {v}, want 1"));
            }
        }
        let qps = afield("qps")?;
        let floor = afield("qps_floor")?;
        if qps < floor {
            return Err(format!(
                "{path}: {qps} route requests/s below floor {floor}"
            ));
        }
        // Independent recheck of the headline claim: the full-mode run
        // must demonstrate >= 500k route requests/s over loopback.
        if mode == "full" && qps < 500_000 {
            return Err(format!(
                "{path}: full-mode run served only {qps} route requests/s (< 500000)"
            ));
        }
        let ratio = afield("degraded_delivered_x1000")?;
        if ratio < 850 {
            return Err(format!(
                "{path}: degraded-mode delivered ratio {ratio}/1000 < 850"
            ));
        }
    }
    if bench == "tab_embed" {
        let classes = top
            .get("classes")
            .ok_or_else(|| format!("{path}: missing \"classes\""))?
            .as_array(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if classes.is_empty() {
            return Err(format!("{path}: empty class sweep"));
        }
        for class in classes {
            let c = class.as_object(0).map_err(|e| format!("{path}: {e}"))?;
            let tried = c
                .get("faults_tried")
                .ok_or_else(|| format!("{path}: class missing \"faults_tried\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))?;
            let ok = c
                .get("reembed_ok")
                .ok_or_else(|| format!("{path}: class missing \"reembed_ok\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))?;
            let mapped = c
                .get("mapped_faults")
                .ok_or_else(|| format!("{path}: class missing \"mapped_faults\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))?;
            if ok + mapped != tried {
                return Err(format!(
                    "{path}: unclassified single-node faults ({ok} + {mapped} != {tried})"
                ));
            }
        }
        let acc = top
            .get("acceptance")
            .ok_or_else(|| format!("{path}: missing \"acceptance\""))?
            .as_object(0)
            .map_err(|e| format!("{path}: {e}"))?;
        let handled = acc
            .get("all_single_faults_handled")
            .ok_or_else(|| format!("{path}: acceptance missing \"all_single_faults_handled\""))?
            .as_u64(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if handled != 1 {
            return Err(format!("{path}: acceptance flag is {handled}, want 1"));
        }
    }
    if bench == "tab_chaos" {
        let classes = top
            .get("classes")
            .ok_or_else(|| format!("{path}: missing \"classes\""))?
            .as_array(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if classes.is_empty() {
            return Err(format!("{path}: empty class sweep"));
        }
        for class in classes {
            let c = class.as_object(0).map_err(|e| format!("{path}: {e}"))?;
            let schedules = c
                .get("schedules")
                .ok_or_else(|| format!("{path}: class missing \"schedules\""))?
                .as_array(0)
                .map_err(|e| format!("{path}: {e}"))?;
            if schedules.len() != 4 {
                return Err(format!(
                    "{path}: class has {} schedules, want 4",
                    schedules.len()
                ));
            }
            for sched in schedules {
                let s = sched.as_object(0).map_err(|e| format!("{path}: {e}"))?;
                let field = |name: &str| -> Result<u64, String> {
                    s.get(name)
                        .ok_or_else(|| format!("{path}: schedule missing \"{name}\""))?
                        .as_u64(0)
                        .map_err(|e| format!("{path}: {e}"))
                };
                let injected = field("injected")?;
                let delivered = field("delivered")?;
                let dropped = field("dropped")?;
                if delivered + dropped != injected {
                    return Err(format!(
                        "{path}: packets unaccounted for ({delivered} + {dropped} != {injected})"
                    ));
                }
                if field("drained")? != 1 {
                    return Err(format!("{path}: schedule did not drain"));
                }
            }
            let reembed = c
                .get("reembed")
                .ok_or_else(|| format!("{path}: class missing \"reembed\""))?
                .as_object(0)
                .map_err(|e| format!("{path}: {e}"))?;
            for flag in ["two_unmapped_ok", "mapped_refused_plain"] {
                let v = reembed
                    .get(flag)
                    .ok_or_else(|| format!("{path}: reembed missing \"{flag}\""))?
                    .as_u64(0)
                    .map_err(|e| format!("{path}: {e}"))?;
                if v != 1 {
                    return Err(format!("{path}: reembed flag \"{flag}\" is {v}, want 1"));
                }
            }
            let remapped = reembed
                .get("remapped")
                .ok_or_else(|| format!("{path}: reembed missing \"remapped\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))?;
            if remapped == 0 {
                return Err(format!(
                    "{path}: mapped-host fault healed without remapping"
                ));
            }
        }
        let acc = top
            .get("acceptance")
            .ok_or_else(|| format!("{path}: missing \"acceptance\""))?
            .as_object(0)
            .map_err(|e| format!("{path}: {e}"))?;
        for flag in ["all_repair_recovered", "all_two_fault_reembeds_ok"] {
            let v = acc
                .get(flag)
                .ok_or_else(|| format!("{path}: acceptance missing \"{flag}\""))?
                .as_u64(0)
                .map_err(|e| format!("{path}: {e}"))?;
            if v != 1 {
                return Err(format!("{path}: acceptance flag \"{flag}\" is {v}, want 1"));
            }
        }
        let worst = acc
            .get("worst_repair_delivered_x1000")
            .ok_or_else(|| format!("{path}: acceptance missing \"worst_repair_delivered_x1000\""))?
            .as_u64(0)
            .map_err(|e| format!("{path}: {e}"))?;
        if worst < 990 {
            return Err(format!(
                "{path}: worst fault-then-repair delivered ratio {worst}/1000 < 990"
            ));
        }
    }
    println!("{path}: ok ({bench}, {} bytes)", text.len());
    Ok(())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_bench_json <path> [<path>...]");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        if let Err(msg) = check(path) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
