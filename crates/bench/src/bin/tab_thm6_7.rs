//! Experiment `tab_thm6_7`: transposition-network (and bubble-sort)
//! embeddings. Measured dilation vs the claims — TN→MS/Complete-RS: 5 when
//! `l = 2`, 7 when `l >= 3`; TN→IS: 6; TN→MIS/Complete-RIS: O(1) — plus a
//! histogram of expansion lengths over the six cases of Theorem 6.

use scg_bench::{f3, Table};
use scg_core::{BubbleSortGraph, CayleyNetwork, SuperCayleyGraph, TranspositionNetwork};
use scg_embed::CayleyEmbedding;

fn main() {
    const CAP: u64 = 50_000;
    let mut t = Table::new(&[
        "guest",
        "host",
        "dilation",
        "claimed",
        "mean path",
        "congestion",
        "load",
        "expansion",
    ]);
    println!("== Theorems 6-7: transposition-network embeddings ==\n");
    let cases: Vec<(String, SuperCayleyGraph, &str)> = vec![
        (
            "7-TN".into(),
            SuperCayleyGraph::macro_star(2, 3).unwrap(),
            "5 (l=2)",
        ),
        (
            "7-TN".into(),
            SuperCayleyGraph::macro_star(3, 2).unwrap(),
            "7 (l>=3)",
        ),
        (
            "7-TN".into(),
            SuperCayleyGraph::complete_rotation_star(2, 3).unwrap(),
            "5 (l=2)",
        ),
        (
            "7-TN".into(),
            SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
            "7 (l>=3)",
        ),
        (
            "7-TN".into(),
            SuperCayleyGraph::insertion_selection(7).unwrap(),
            "6",
        ),
        (
            "7-TN".into(),
            SuperCayleyGraph::macro_is(3, 2).unwrap(),
            "O(1)",
        ),
        (
            "7-TN".into(),
            SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
            "O(1)",
        ),
    ];
    for (gname, host, claim) in &cases {
        let tn = TranspositionNetwork::new(host.degree_k()).unwrap();
        let ce = CayleyEmbedding::build(&tn, host, CAP).unwrap();
        let e = ce.embedding();
        t.row(&[
            gname.clone(),
            host.name(),
            e.dilation().to_string(),
            (*claim).to_string(),
            f3(e.mean_path_length()),
            e.congestion().to_string(),
            e.load().to_string(),
            f3(e.expansion()),
        ]);
    }
    // Bubble-sort graphs are TN subgraphs → same constants apply.
    for host in [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
    ] {
        let bs = BubbleSortGraph::new(host.degree_k()).unwrap();
        let ce = CayleyEmbedding::build(&bs, &host, CAP).unwrap();
        let e = ce.embedding();
        t.row(&[
            "7-bubble-sort".into(),
            host.name(),
            e.dilation().to_string(),
            "<= TN claim".into(),
            f3(e.mean_path_length()),
            e.congestion().to_string(),
            e.load().to_string(),
            f3(e.expansion()),
        ]);
    }
    print!("{}", t.render());

    // Six-case expansion-length histogram for Theorem 6 on MS(3,2).
    let host = SuperCayleyGraph::macro_star(3, 2).unwrap();
    let emu = scg_core::StarEmulation::new(&host).unwrap();
    let k = host.degree_k();
    let mut hist = std::collections::BTreeMap::new();
    for i in 1..=k {
        for j in i + 1..=k {
            let len = emu.expand_tn_link(i, j).unwrap().len();
            *hist.entry(len).or_insert(0usize) += 1;
        }
    }
    println!("\nExpansion-length histogram for all T_{{i,j}} on MS(3,2):");
    for (len, count) in hist {
        println!("  length {len}: {count} link types");
    }
}
