//! Experiment `tab_group`: algebraic connectivity certification beyond
//! materialization. The paper's constructions presume each generator set
//! generates `S_k` (connected networks); BFS can verify this only to
//! `k! ≈ 10^7`, while the Schreier–Sims stabilizer chain certifies it for
//! every class at every `k ≤ 20` — networks of up to `20! ≈ 2.4 × 10^18`
//! nodes.

use scg_bench::Table;
use scg_core::{CayleyNetwork, ScgClass, SuperCayleyGraph};
use scg_graph::moore_diameter_lower_bound;
use scg_perm::factorial;

fn main() {
    let mut t = Table::new(&[
        "network",
        "k",
        "N = k!",
        "degree",
        "DL(d,N)",
        "generates S_k",
    ]);
    println!("== Group-theoretic connectivity certification (Schreier-Sims) ==\n");
    // The largest shape of each class that fits k <= 20.
    let giants: Vec<SuperCayleyGraph> = vec![
        SuperCayleyGraph::macro_star(6, 3).unwrap(),
        SuperCayleyGraph::macro_star(9, 2).unwrap(),
        SuperCayleyGraph::rotation_star(9, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(6, 3).unwrap(),
        SuperCayleyGraph::macro_rotator(6, 3).unwrap(),
        SuperCayleyGraph::rotation_rotator(9, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_rotator(6, 3).unwrap(),
        SuperCayleyGraph::insertion_selection(20).unwrap(),
        SuperCayleyGraph::macro_is(6, 3).unwrap(),
        SuperCayleyGraph::rotation_is(9, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(6, 3).unwrap(),
    ];
    for net in &giants {
        let k = net.degree_k();
        t.row(&[
            net.name(),
            k.to_string(),
            factorial(k).to_string(),
            net.node_degree().to_string(),
            moore_diameter_lower_bound(net.node_degree() as u64, factorial(k)).to_string(),
            if net.generates_symmetric_group() {
                "yes (certified)".into()
            } else {
                "NO".into()
            },
        ]);
    }
    // Every class × every shape with k <= 13: exhaustive certification.
    let mut all_ok = true;
    let mut count = 0usize;
    for class in ScgClass::ALL {
        for l in 1..=12usize {
            for n in 1..=12usize {
                let Ok(net) = SuperCayleyGraph::new(class, l, n) else {
                    continue;
                };
                if net.degree_k() > 13 {
                    continue;
                }
                count += 1;
                if !net.generates_symmetric_group() {
                    all_ok = false;
                    println!("!! {} does NOT generate S_k", net.name());
                }
            }
        }
    }
    print!("{}", t.render());
    println!(
        "\nExhaustive sweep: {count} class/shape combinations with k <= 13 — {}",
        if all_ok {
            "all generate S_k (all networks connected)"
        } else {
            "FAILURES found"
        }
    );
}
