//! Experiment `bench_serve`: QPS and latency of the `scg-serve` routing
//! daemon over a loopback Unix-domain socket.
//!
//! Spawns a real daemon in-process ([`scg_serve::spawn`]), then drives it
//! open-loop from a seeded client with a fixed window of in-flight
//! frames:
//!
//! * **clean batch sweep** — `ROUTE_BATCH` frames of packed pairs on
//!   `MS(2,2)`; the headline `qps` is delivered route requests (pairs)
//!   per wall-clock second, gated against a floor of 500k/s in full mode
//!   (25k/s under smoke's tiny budgets);
//! * **single-route sweep** — pipelined `ROUTE` frames populating the
//!   `scg_serve_route_micros` histogram;
//! * **degraded sweep** — a canned [`FaultSchedule`] replayed live as
//!   `FAULT_REPORT` frames between batch groups; every pair must come
//!   back delivered (possibly detoured or via the survivor-BFS fallback)
//!   or refused with a typed status — never stalled — and the delivered
//!   ratio must stay ≥ 85%.
//!
//! Latency is taken from the daemon's own histograms: the final `METRICS`
//! scrape (JSON exposition) is parsed back through
//! [`scg_obs::Snapshot::from_json`] and the p50/p99 service times are
//! read with [`scg_obs::Snapshot::quantile`], then compared against the
//! SLO targets the server exports.
//!
//! Writes `results/bench_serve.txt` and `results/BENCH_serve.json`
//! (integers only; self-validated by parsing back through
//! [`scg_obs::json`]). `--smoke` shrinks volumes for CI.

use std::time::Instant;

use scg_core::{apply_path, CayleyNetwork, ScgClass};
use scg_graph::{ChaosEvent, FaultSchedule, TimedEvent};
use scg_obs::Snapshot;
use scg_perm::{Perm, XorShift64};
use scg_serve::metrics::{SLO_BATCH_P99_MICROS, SLO_ROUTE_P99_MICROS};
use scg_serve::wire::{encode_request, FrameType};
use scg_serve::{spawn, Client, Config, NetId, Reply, Request};

/// Everything runs on one network: batching dominates, so one class is
/// representative and keeps the artifact small.
const NET: NetId = NetId {
    class: ScgClass::MacroStar,
    levels: 2,
    box_size: 2,
};

/// Clean-sweep volumes: frames × pairs-per-frame route requests.
const FULL_FRAMES: usize = 1500;
const SMOKE_FRAMES: usize = 40;
const FULL_PAIRS_PER_FRAME: usize = 512;
const SMOKE_PAIRS_PER_FRAME: usize = 256;

/// Pipelined single-`ROUTE` requests.
const FULL_SINGLES: usize = 4000;
const SMOKE_SINGLES: usize = 300;

/// Degraded sweep: batch frames per fault cycle.
const FULL_DEGRADED_FRAMES: usize = 60;
const SMOKE_DEGRADED_FRAMES: usize = 6;

/// In-flight frames in the open loop. Replies for a full window stay
/// far below the server's 256 KiB high-water mark, so the window never
/// deadlocks against backpressure.
const WINDOW: usize = 8;

/// The headline gate: delivered route requests per second over loopback.
const FULL_QPS_FLOOR: u64 = 500_000;
const SMOKE_QPS_FLOOR: u64 = 25_000;

/// Tallies scanned out of reply frames.
#[derive(Debug, Default, Clone, Copy)]
struct Outcomes {
    delivered: u64,
    refused: u64,
    detoured: u64,
    fallback: u64,
}

impl Outcomes {
    fn absorb(&mut self, other: Outcomes) {
        self.delivered += other.delivered;
        self.refused += other.refused;
        self.detoured += other.detoured;
        self.fallback += other.fallback;
    }
}

/// Scans a `ROUTE_BATCH_OK` payload in place (no per-pair allocation):
/// `count u32`, then per item `status u8`, and for delivered items
/// `flags u8 · hoplen u16 · 3·hoplen hop bytes`.
fn scan_batch_reply(ftype: u8, payload: &[u8]) -> Outcomes {
    assert_eq!(
        ftype,
        FrameType::RouteBatchOk as u8,
        "expected ROUTE_BATCH_OK, got frame type {ftype:#x}"
    );
    let mut out = Outcomes::default();
    let count = u32::from_le_bytes(payload[..4].try_into().expect("count prefix")) as usize;
    let mut at = 4;
    for _ in 0..count {
        let status = payload[at];
        at += 1;
        if status == 0 {
            out.delivered += 1;
            let flags = payload[at];
            let hoplen =
                u16::from_le_bytes(payload[at + 1..at + 3].try_into().expect("hoplen")) as usize;
            at += 3 + 3 * hoplen;
            if flags & scg_serve::wire::FLAG_DETOURED != 0 {
                out.detoured += 1;
            }
            if flags & scg_serve::wire::FLAG_FALLBACK != 0 {
                out.fallback += 1;
            }
        } else {
            out.refused += 1;
        }
    }
    assert_eq!(at, payload.len(), "trailing bytes in batch reply");
    out
}

/// Seeded uniform-degree pairs (identity sources keep refusals tied to
/// destination faults, which the canned schedule controls).
fn sample_pairs(k: usize, count: usize, rng: &mut XorShift64) -> Vec<(Perm, Perm)> {
    (0..count)
        .map(|_| (Perm::random(k, rng), Perm::random(k, rng)))
        .collect()
}

/// Drives `frames` copies of the pre-encoded frames in `pool` (cycled)
/// through `client` with [`WINDOW`] in flight, scanning every reply.
fn open_loop(client: &mut Client, pool: &[Vec<u8>], frames: usize) -> Outcomes {
    let mut out = Outcomes::default();
    let mut sent = 0usize;
    let mut received = 0usize;
    while sent < frames.min(WINDOW) {
        client.send_raw(&pool[sent % pool.len()]).expect("send");
        sent += 1;
    }
    while received < frames {
        let scanned = client.recv_with(scan_batch_reply).expect("batch reply");
        out.absorb(scanned);
        received += 1;
        if sent < frames {
            client.send_raw(&pool[sent % pool.len()]).expect("send");
            sent += 1;
        }
    }
    out
}

/// The canned degraded-mode schedule: two permanent node faults and a
/// link fault up front, then a third node fault, then one repair plus a
/// fresh fault — three cycles exercising fault, accumulation, and
/// repair while traffic keeps flowing.
fn canned_schedule() -> FaultSchedule {
    let ev = |at, event| TimedEvent { at, event };
    FaultSchedule::from_events(vec![
        ev(0, ChaosEvent::FailNode(1)),
        ev(0, ChaosEvent::FailNode(2)),
        ev(0, ChaosEvent::FailLinkUndirected(0, 3)),
        ev(1, ChaosEvent::FailNode(4)),
        ev(2, ChaosEvent::RepairNode(1)),
        ev(2, ChaosEvent::FailNode(5)),
    ])
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (frames, pairs_per_frame, singles, degraded_frames, qps_floor) = if smoke {
        (
            SMOKE_FRAMES,
            SMOKE_PAIRS_PER_FRAME,
            SMOKE_SINGLES,
            SMOKE_DEGRADED_FRAMES,
            SMOKE_QPS_FLOOR,
        )
    } else {
        (
            FULL_FRAMES,
            FULL_PAIRS_PER_FRAME,
            FULL_SINGLES,
            FULL_DEGRADED_FRAMES,
            FULL_QPS_FLOOR,
        )
    };

    let sock = std::env::temp_dir().join(format!("scg-bench-serve-{}.sock", std::process::id()));
    let server = spawn(Config::new(&sock)).expect("daemon spawns");
    let net = NET.to_net().expect("MS(2,2) constructs");
    let k = net.degree_k();
    println!(
        "== scg-serve loopback benchmark ({} mode, {} shards) ==",
        if smoke { "smoke" } else { "full" },
        server.shards()
    );

    let mut rng = XorShift64::new(0xBE7C_5EED);
    let mut client = Client::connect_uds(&sock).expect("connect");

    // Correctness spot-check before timing anything: a handful of fully
    // decoded round trips, hops applied and compared.
    for (from, to) in sample_pairs(k, 8, &mut rng) {
        match client
            .request(&Request::Route { net: NET, from, to })
            .expect("route")
        {
            Reply::RouteOk { hops, .. } => {
                assert_eq!(apply_path(&from, &hops).expect("apply"), to, "wrong route");
            }
            other => panic!("expected ROUTE_OK, got {other:?}"),
        }
    }

    // Clean batch sweep: a small pool of distinct pre-encoded frames,
    // cycled, so client-side encoding stays off the timed path.
    let pool: Vec<Vec<u8>> = (0..WINDOW)
        .map(|_| {
            encode_request(&Request::RouteBatch {
                net: NET,
                pairs: sample_pairs(k, pairs_per_frame, &mut rng),
            })
        })
        .collect();
    let start = Instant::now();
    let clean = open_loop(&mut client, &pool, frames);
    let clean_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let clean_requests = (frames * pairs_per_frame) as u64;
    assert_eq!(
        clean.delivered, clean_requests,
        "clean sweep refused {} of {clean_requests} pairs",
        clean.refused
    );
    let qps = clean_requests
        .saturating_mul(1_000_000)
        .checked_div(clean_micros)
        .unwrap_or(0);
    println!("clean: {clean_requests} route requests in {clean_micros} us -> {qps} requests/s");

    // Single-route sweep (latency histogram food).
    let single_frame = {
        let (from, to) = &sample_pairs(k, 1, &mut rng)[0];
        encode_request(&Request::Route {
            net: NET,
            from: *from,
            to: *to,
        })
    };
    let mut singles_done = 0usize;
    let mut sent = 0usize;
    while sent < singles.min(32) {
        client.send_raw(&single_frame).expect("send");
        sent += 1;
    }
    while singles_done < singles {
        client
            .recv_with(|ftype, _| {
                assert_eq!(ftype, FrameType::RouteOk as u8, "single route failed");
            })
            .expect("route reply");
        singles_done += 1;
        if sent < singles {
            client.send_raw(&single_frame).expect("send");
            sent += 1;
        }
    }

    // Degraded sweep: replay the canned schedule cycle by cycle, keeping
    // batch traffic flowing between FAULT_REPORT frames.
    let schedule = canned_schedule();
    let mut degraded = Outcomes::default();
    let mut fault_frames = 0u64;
    let mut events_applied = 0u64;
    let mut cycle_start = 0usize;
    let events = schedule.events();
    while cycle_start < events.len() {
        let at = events[cycle_start].at;
        let cycle: Vec<ChaosEvent> = events
            .iter()
            .filter(|e| e.at == at)
            .map(|e| e.event)
            .collect();
        cycle_start += cycle.len();
        match client
            .request(&Request::FaultReport {
                net: NET,
                events: cycle,
            })
            .expect("fault report")
        {
            Reply::FaultOk { applied, .. } => events_applied += u64::from(applied),
            other => panic!("expected FAULT_OK, got {other:?}"),
        }
        fault_frames += 1;
        let dpool: Vec<Vec<u8>> = (0..4)
            .map(|_| {
                encode_request(&Request::RouteBatch {
                    net: NET,
                    pairs: sample_pairs(k, pairs_per_frame.min(256), &mut rng),
                })
            })
            .collect();
        degraded.absorb(open_loop(&mut client, &dpool, degraded_frames));
    }
    let degraded_requests = degraded.delivered + degraded.refused;
    let delivered_x1000 = degraded
        .delivered
        .saturating_mul(1000)
        .checked_div(degraded_requests)
        .unwrap_or(0);
    println!(
        "degraded: {degraded_requests} pairs under {events_applied} live fault events -> \
         {} delivered ({} detoured, {} fallback), {} refused ({delivered_x1000}/1000)",
        degraded.delivered, degraded.detoured, degraded.fallback, degraded.refused
    );

    // Latency from the daemon's own histograms, via the JSON exposition.
    let snap = Snapshot::from_json(&client.metrics(true).expect("metrics scrape"))
        .expect("metrics JSON parses");
    let q = |name: &str, q_x1000: u64| snap.quantile(name, q_x1000).unwrap_or(0);
    let route_p50 = q("scg_serve_route_micros", 500);
    let route_p99 = q("scg_serve_route_micros", 990);
    let batch_p50 = q("scg_serve_batch_micros", 500);
    let batch_p99 = q("scg_serve_batch_micros", 990);
    println!(
        "latency (daemon-side, us): route p50 {route_p50} p99 {route_p99} \
         (SLO {SLO_ROUTE_P99_MICROS}); batch p50 {batch_p50} p99 {batch_p99} \
         (SLO {SLO_BATCH_P99_MICROS})"
    );
    let shards = server.shards();
    server.shutdown();

    let qps_ge_floor = qps >= qps_floor;
    let batch_p99_le_slo = batch_p99 <= SLO_BATCH_P99_MICROS;
    let route_p99_le_slo = route_p99 <= SLO_ROUTE_P99_MICROS;
    let degraded_ok = delivered_x1000 >= 850;

    let mode = if smoke { "smoke" } else { "full" };
    let json = format!(
        "{{\"bench\":\"bench_serve\",\"mode\":\"{mode}\",\"shards\":{shards},\
         \"transport\":\"uds\",\
         \"clean\":{{\"network\":\"{}\",\"k\":{k},\"frames\":{frames},\
         \"pairs_per_frame\":{pairs_per_frame},\"requests\":{clean_requests},\
         \"delivered\":{},\"elapsed_micros\":{clean_micros},\"qps\":{qps},\
         \"singles\":{singles},\"route_p50_micros\":{route_p50},\
         \"route_p99_micros\":{route_p99},\"batch_p50_micros\":{batch_p50},\
         \"batch_p99_micros\":{batch_p99}}},\
         \"degraded\":{{\"network\":\"{}\",\"fault_frames\":{fault_frames},\
         \"events_applied\":{events_applied},\"requests\":{degraded_requests},\
         \"delivered\":{},\"refused\":{},\"detoured\":{},\"fallback\":{},\
         \"delivered_x1000\":{delivered_x1000}}},\
         \"acceptance\":{{\"qps\":{qps},\"qps_floor\":{qps_floor},\
         \"qps_ge_floor\":{},\"route_p99_micros\":{route_p99},\
         \"route_p99_le_slo\":{},\"batch_p99_micros\":{batch_p99},\
         \"batch_p99_le_slo\":{},\"degraded_delivered_x1000\":{delivered_x1000},\
         \"degraded_ge_850\":{},\"degraded_accounted\":{}}}}}",
        json_escape(&net.name()),
        clean.delivered,
        json_escape(&net.name()),
        degraded.delivered,
        degraded.refused,
        degraded.detoured,
        degraded.fallback,
        u8::from(qps_ge_floor),
        u8::from(route_p99_le_slo),
        u8::from(batch_p99_le_slo),
        u8::from(degraded_ok),
        u8::from(degraded.delivered + degraded.refused == degraded_requests),
    );

    // Self-validate through the shared hand-rolled parser before the
    // artifact is trustworthy.
    let parsed = scg_obs::json::parse(&json).expect("BENCH_serve.json parses");
    let top = parsed.as_object(0).expect("top-level object");
    let acc = top["acceptance"].as_object(0).expect("acceptance object");
    assert_eq!(acc["qps"].as_u64(0).expect("qps int"), qps);

    let results = std::path::Path::new("results");
    std::fs::create_dir_all(results).expect("results/ creatable");
    let report = format!(
        "== scg-serve loopback benchmark ==\n\n\
         mode: {mode}; {shards} shard(s); transport: unix-domain socket.\n\
         Open loop, {WINDOW} frames in flight, pre-encoded seeded pairs.\n\n\
         clean:    {clean_requests} route requests ({frames} x {pairs_per_frame} \
         ROUTE_BATCH) in {clean_micros} us -> {qps} requests/s \
         (floor {qps_floor}, pass = {})\n\
         latency:  route p50/p99 {route_p50}/{route_p99} us (SLO p99 \
         {SLO_ROUTE_P99_MICROS}); batch p50/p99 {batch_p50}/{batch_p99} us \
         (SLO p99 {SLO_BATCH_P99_MICROS})\n\
         degraded: {degraded_requests} pairs under a live canned FaultSchedule \
         ({events_applied} events over {fault_frames} FAULT_REPORT frames) -> \
         {} delivered ({} detoured, {} fallback), {} refused; ratio \
         {delivered_x1000}/1000 (floor 850, pass = {})\n",
        u8::from(qps_ge_floor),
        degraded.delivered,
        degraded.detoured,
        degraded.fallback,
        degraded.refused,
        u8::from(degraded_ok),
    );
    std::fs::write(results.join("bench_serve.txt"), &report).expect("results/ writable");
    std::fs::write(results.join("BENCH_serve.json"), &json).expect("results/ writable");
    println!("wrote results/bench_serve.txt, results/BENCH_serve.json");

    assert!(
        qps_ge_floor,
        "daemon served {qps} route requests/s, below the {qps_floor} floor"
    );
    assert!(
        batch_p99_le_slo,
        "batch p99 {batch_p99} us blew the {SLO_BATCH_P99_MICROS} us SLO"
    );
    assert!(
        route_p99_le_slo,
        "route p99 {route_p99} us blew the {SLO_ROUTE_P99_MICROS} us SLO"
    );
    assert!(
        degraded_ok,
        "degraded delivered ratio {delivered_x1000}/1000 below 850"
    );
}
