//! Experiment `tab_te`: total exchange completion times (Corollary 3).
//! SDC optima (`Σ_w dist(w)`, Mišić–Jovanović's `(k+1)! + o(·)`) and
//! measured all-port completion on the store-and-forward simulator vs the
//! `⌈Σ_w dist(w)/d⌉` volume bound.

use scg_bench::{f3, Table};
use scg_comm::{te_all_port, te_sdc};
use scg_core::{CayleyNetwork, StarGraph, SuperCayleyGraph};
use scg_perm::factorial;

fn main() {
    const CAP: u64 = 50_000;
    println!("== Corollary 3: total exchange ==\n");
    let mut t = Table::new(&[
        "network",
        "N",
        "degree",
        "model",
        "steps",
        "lower bound",
        "ratio",
        "reference",
    ]);

    // SDC optima with the (k+1)! reference constant.
    let sdc_nets: Vec<(Box<dyn CayleyNetwork>, String)> = vec![
        (
            Box::new(StarGraph::new(4).unwrap()),
            format!("(k+1)! = {}", factorial(5)),
        ),
        (
            Box::new(StarGraph::new(5).unwrap()),
            format!("(k+1)! = {}", factorial(6)),
        ),
        (
            Box::new(StarGraph::new(6).unwrap()),
            format!("(k+1)! = {}", factorial(7)),
        ),
        (
            Box::new(SuperCayleyGraph::macro_star(2, 2).unwrap()),
            String::new(),
        ),
        (
            Box::new(SuperCayleyGraph::macro_star(3, 2).unwrap()),
            String::new(),
        ),
        (
            Box::new(SuperCayleyGraph::insertion_selection(6).unwrap()),
            String::new(),
        ),
    ];
    for (net, reference) in &sdc_nets {
        let r = te_sdc(net.as_ref(), CAP).unwrap();
        t.row(&[
            r.network.clone(),
            r.num_nodes.to_string(),
            r.degree.to_string(),
            "SDC".into(),
            r.steps.to_string(),
            r.lower_bound.to_string(),
            f3(r.optimality_ratio()),
            reference.clone(),
        ]);
    }

    // All-port, simulated (N <= 720 keeps the packet count tractable).
    let ap_nets: Vec<Box<dyn CayleyNetwork>> = vec![
        Box::new(StarGraph::new(5).unwrap()),
        Box::new(StarGraph::new(6).unwrap()),
        Box::new(SuperCayleyGraph::macro_star(2, 2).unwrap()),
        Box::new(SuperCayleyGraph::complete_rotation_star(2, 2).unwrap()),
        Box::new(SuperCayleyGraph::insertion_selection(5).unwrap()),
        Box::new(SuperCayleyGraph::insertion_selection(6).unwrap()),
        Box::new(SuperCayleyGraph::macro_is(2, 2).unwrap()),
    ];
    for net in &ap_nets {
        let r = te_all_port(net.as_ref(), 1_000, 10_000_000).unwrap();
        t.row(&[
            r.network.clone(),
            r.num_nodes.to_string(),
            r.degree.to_string(),
            "all-port".into(),
            r.steps.to_string(),
            r.lower_bound.to_string(),
            f3(r.optimality_ratio()),
            format!("{} hops", r.transmissions),
        ]);
    }
    print!("{}", t.render());
    println!("\nShape check (Corollary 3): at equal N, higher-degree hosts (star, IS)");
    println!("finish faster; the low-degree MS pays the Θ(√(log N/log log N)) factor.");

    // Emulation prediction (Theorem 4 → Corollary 3 route): running the
    // star's all-port TE through the MS(2,2) schedule costs star-steps ×
    // makespan; direct shortest-path routing on the host beats that upper
    // bound, as expected.
    let star5 = StarGraph::new(5).unwrap();
    let ms22 = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let star_te = te_all_port(&star5, 1_000, 1_000_000).unwrap();
    let ms_te = te_all_port(&ms22, 1_000, 1_000_000).unwrap();
    let makespan = scg_emu::AllPortSchedule::build(&ms22).unwrap().makespan() as u64;
    println!(
        "\nemulation upper bound on MS(2,2): star TE {} steps × slowdown {} = {};",
        star_te.steps,
        makespan,
        star_te.steps * makespan
    );
    println!(
        "direct host TE measures {} steps — within the emulation bound, {:.1}x better.",
        ms_te.steps,
        (star_te.steps * makespan) as f64 / ms_te.steps as f64
    );
}
