//! Experiment `fig1`: regenerates Figure 1 — the all-port schedules for
//! emulating a 13-star on MS(4,3)/Complete-RS(4,3) (Figure 1a) and a
//! 16-star on MS(5,3)/Complete-RS(5,3) (Figure 1b) — and checks the
//! caption's claims (makespan 6, a generator at most once per row, links
//! fully used through step 5 and ~93% used on average for 1b).

use scg_core::SuperCayleyGraph;
use scg_emu::AllPortSchedule;

fn main() {
    println!("== Figure 1: all-port star emulation schedules ==\n");
    let cases = [
        ("Figure 1a", SuperCayleyGraph::macro_star(4, 3)),
        ("Figure 1a'", SuperCayleyGraph::complete_rotation_star(4, 3)),
        ("Figure 1b", SuperCayleyGraph::macro_star(5, 3)),
        ("Figure 1b'", SuperCayleyGraph::complete_rotation_star(5, 3)),
    ];
    for (tag, host) in cases {
        let host = host.expect("valid parameters");
        let s = AllPortSchedule::build(&host).expect("emulation-capable host");
        s.validate().expect("schedule invariants");
        println!("--- {tag} ---");
        print!("{}", s.render());
        println!(
            "makespan {} vs Theorem 4 bound {:?}; paper caption: '93%' for 1b (measured {:.1}%)\n",
            s.makespan(),
            s.theoretical_bound(),
            100.0 * s.utilization()
        );
    }
}
