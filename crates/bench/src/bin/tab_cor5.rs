//! Experiment `tab_cor5`: hypercube embeddings. The constructive
//! `⌊(k−1)/2⌋`-cube guests (disjoint transpositions) at dilation 1 into
//! the TN and 3 into the star, composed into constant dilation on every
//! emulation-capable host (the paper's Corollary 5 composition; the
//! dimension bound substitution is documented in DESIGN.md).

use scg_bench::{f3, Table};
use scg_core::{CayleyNetwork, SuperCayleyGraph};
use scg_embed::{cube_dimension_for, hypercube_into_scg, hypercube_into_star, hypercube_into_tn};

fn main() {
    const CAP: u64 = 50_000;
    println!("== Corollary 5: hypercube embeddings ==\n");
    let mut t = Table::new(&[
        "guest",
        "host",
        "dilation",
        "load",
        "expansion",
        "congestion",
    ]);
    for k in [5usize, 7] {
        let d = cube_dimension_for(k);
        let e = hypercube_into_tn(k, CAP).unwrap();
        t.row(&[
            format!("{d}-cube"),
            format!("{k}-TN"),
            e.dilation().to_string(),
            e.load().to_string(),
            f3(e.expansion()),
            e.congestion().to_string(),
        ]);
        let e2 = hypercube_into_star(k, CAP).unwrap();
        t.row(&[
            format!("{d}-cube"),
            format!("{k}-star"),
            e2.dilation().to_string(),
            e2.load().to_string(),
            f3(e2.expansion()),
            e2.congestion().to_string(),
        ]);
    }
    for host in [
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
        SuperCayleyGraph::macro_is(3, 2).unwrap(),
    ] {
        let d = cube_dimension_for(host.degree_k());
        let e = hypercube_into_scg(&host, CAP).unwrap();
        t.row(&[
            format!("{d}-cube"),
            host.name(),
            e.dilation().to_string(),
            e.load().to_string(),
            f3(e.expansion()),
            e.congestion().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nAll dilations are O(1), per Corollary 5 (composition through Thm 6/7).");
}
