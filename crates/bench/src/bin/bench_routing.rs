//! Experiment `bench_routing`: the routing hot path, before and after the
//! compiled route planner.
//!
//! Sweeps all ten Table II classes at `k = 5` plus the larger `k = 9` and
//! `k = 13` shapes (routing never materializes the `k!` nodes, so big `k`
//! is free) and measures, per class:
//!
//! * `legacy` — the pre-planner `scg_route` implementation, reconstructed
//!   verbatim from the public API: fresh [`StarEmulation`] + `star_route`
//!   + a per-hop `Vec` cascade;
//! * `scg_route` — the public entry point, now a plan-cache lookup plus
//!   slice copies;
//! * `planner` — the pre-packed planner baseline, reconstructed from the
//!   public API: the byte-array greedy star-sort over a held
//!   [`RoutePlan`]'s `star_link` slices;
//! * `packed` — the steady-state path: a held [`RoutePlan`] running the
//!   bit-packed `u64` star-sort via `route_into` into a reused
//!   [`RouteBuf`], zero heap allocation;
//! * batch throughput — [`route_batch`] (packed structure-of-arrays
//!   lanes) at 1 thread and at the machine's parallelism.
//!
//! Every pair is cross-checked: packed ≡ planner ≡ legacy byte for byte.
//! The acceptance record carries `packed_le_planner`; `check_bench_json`
//! fails the build when the packed kernel regresses past the planner
//! baseline (×1.25 slack in smoke mode, ×1.05 in full, absorbing timer
//! noise only — a real regression trips both).
//!
//! Writes the human table to `results/bench_routing.txt` and the
//! machine-readable record to `results/BENCH_routing.json` (integers
//! only; validated by parsing it back through [`scg_obs::json`]).
//! `--smoke` shrinks budgets for CI, keeping every correctness
//! cross-check.

use std::hint::black_box;
use std::time::{Duration, Instant};

use scg_bench::Table;
use scg_core::{
    apply_path, route_batch, route_plan, scg_route, star_route, CayleyNetwork, Generator,
    RoutePlan, StarEmulation, SuperCayleyGraph,
};
use scg_perm::{Perm, XorShift64, MAX_DEGREE};

/// Fixed-seed routed pairs per class (cycled by the timed closures).
const FULL_PAIRS: usize = 512;
const SMOKE_PAIRS: usize = 48;

/// Smoke runs tolerate `packed ≤ planner × 1.25` (8 ms budgets are
/// noisy); full runs insist on `× 1.05`.
const SMOKE_SLACK_PCT: u64 = 125;
const FULL_SLACK_PCT: u64 = 105;

/// The parallel batch gate: `par ≥ seq × slack/100`. Adaptive
/// thread-count clamping ([`scg_core::MIN_PAIRS_PER_THREAD`]) makes the
/// parallel path identical to sequential on small batches or single-core
/// machines, so the remaining gap is timer noise — 90% in full mode,
/// 70% under smoke's 8 ms budgets.
const FULL_BATCH_PAR_SLACK_PCT: u64 = 90;
const SMOKE_BATCH_PAR_SLACK_PCT: u64 = 70;

/// One measured per-class row.
struct Row {
    network: String,
    k: usize,
    legacy_ns: u64,
    scg_route_ns: u64,
    planner_ns: u64,
    packed_ns: u64,
    batch_seq_pps: u64,
    batch_par_pps: u64,
}

impl Row {
    fn speedup_x1000(&self) -> u64 {
        (self.legacy_ns * 1000)
            .checked_div(self.scg_route_ns)
            .unwrap_or(0)
    }
}

/// Mean wall time of `f` in nanoseconds over a time budget.
fn mean_ns(budget: Duration, mut f: impl FnMut()) -> u64 {
    let warm = Instant::now();
    while warm.elapsed() < budget / 5 {
        f();
    }
    let mut iters: u64 = 0;
    let start = Instant::now();
    let elapsed = loop {
        f();
        iters += 1;
        let e = start.elapsed();
        if e >= budget {
            break e;
        }
    };
    (elapsed.as_nanos() / u128::from(iters)) as u64
}

/// The pre-PR `scg_route` body, kept as the measured baseline: a fresh
/// emulation helper and a fresh `Vec` cascade per call.
fn legacy_scg_route(net: &SuperCayleyGraph, from: &Perm, to: &Perm) -> Vec<Generator> {
    let emu = StarEmulation::new(net).expect("all classes emulate");
    let mut out = Vec::new();
    for g in star_route(from, to) {
        let Generator::Transposition { i } = g else {
            unreachable!("star routes consist of transpositions")
        };
        out.extend(emu.expand_star_link(i as usize).expect("valid link"));
    }
    out
}

/// The pre-packed planner baseline, reconstructed from the public API:
/// the byte-array relative permutation plus the greedy star-sort with a
/// monotone cycle-opening cursor, emitting the plan's precompiled
/// `star_link` slices into a reused vector. This was `route_into` before
/// the bit-packed kernel; racing it against `route_into` isolates the
/// win of word-parallel state from the win of precompiled expansions.
fn planner_scan_route(plan: &RoutePlan, from: &Perm, to: &Perm, out: &mut Vec<Generator>) {
    out.clear();
    let k = plan.degree_k();
    let mut inv_to = [0u8; MAX_DEGREE];
    for (pos, &sym) in to.symbols().iter().enumerate() {
        inv_to[sym as usize - 1] = (pos + 1) as u8;
    }
    let mut a = [0u8; MAX_DEGREE];
    for (i, &sym) in from.symbols().iter().enumerate() {
        a[i] = inv_to[sym as usize - 1];
    }
    let mut scan = 1usize;
    loop {
        let s = a[0];
        let i = if s != 1 {
            s as usize
        } else {
            while scan < k && a[scan] == (scan + 1) as u8 {
                scan += 1;
            }
            if scan == k {
                return;
            }
            scan + 1
        };
        out.extend_from_slice(plan.star_link(i).expect("link in 2..=k"));
        a.swap(0, i - 1);
    }
}

fn sample_pairs(k: usize, count: usize, seed: u64) -> Vec<(Perm, Perm)> {
    let mut rng = XorShift64::new(seed);
    (0..count)
        .map(|_| (Perm::random(k, &mut rng), Perm::random(k, &mut rng)))
        .collect()
}

fn measure_class(net: &SuperCayleyGraph, budget: Duration, pairs: usize, threads: usize) -> Row {
    let k = net.degree_k();
    let sample = sample_pairs(k, pairs, 0xB52 + k as u64);
    let plan = route_plan(net).expect("plan compiles");
    let mut buf = plan.new_buf();

    // Correctness cross-checks on the full sample: packed (`scg_route`
    // rides `route_into`), the planner-scan baseline, and the legacy
    // cascade all emit byte-identical paths, and batch equals sequential.
    let mut scan_out = Vec::new();
    for (from, to) in &sample {
        let new = scg_route(net, from, to).expect("route");
        assert_eq!(new, legacy_scg_route(net, from, to), "{}", net.name());
        planner_scan_route(&plan, from, to, &mut scan_out);
        assert_eq!(new, scan_out, "packed != planner scan on {}", net.name());
        assert_eq!(apply_path(from, &new).expect("walk"), *to);
    }
    let batch = route_batch(net, &sample, threads).expect("batch");
    for (i, (from, to)) in sample.iter().enumerate() {
        assert_eq!(batch[i], scg_route(net, from, to).expect("route"));
    }

    let mut c = 0usize;
    let legacy_ns = mean_ns(budget, || {
        let p = &sample[c];
        c = (c + 1) % sample.len();
        black_box(legacy_scg_route(net, &p.0, &p.1));
    });
    let mut c = 0usize;
    let scg_route_ns = mean_ns(budget, || {
        let p = &sample[c];
        c = (c + 1) % sample.len();
        black_box(scg_route(net, &p.0, &p.1).expect("route"));
    });
    let mut c = 0usize;
    let planner_ns = mean_ns(budget, || {
        let p = &sample[c];
        c = (c + 1) % sample.len();
        planner_scan_route(&plan, &p.0, &p.1, &mut scan_out);
        black_box(scan_out.len());
    });
    let mut c = 0usize;
    let packed_ns = mean_ns(budget, || {
        let p = &sample[c];
        c = (c + 1) % sample.len();
        plan.route_into(&p.0, &p.1, &mut buf).expect("route");
        black_box(buf.len());
    });

    // Interleaved min-of-3: seq and par alternate within one pass so
    // clock drift and cache temperature hit both columns equally, and
    // each column keeps its best (minimum-ns) rep — the standard defense
    // against the one-sided noise that made par sporadically read slower
    // than seq on identical code paths.
    let mut batch_seq_ns = u64::MAX;
    let mut batch_par_ns = u64::MAX;
    for _ in 0..3 {
        batch_seq_ns = batch_seq_ns.min(mean_ns(budget, || {
            black_box(route_batch(net, &sample, 1).expect("batch"));
        }));
        batch_par_ns = batch_par_ns.min(mean_ns(budget, || {
            black_box(route_batch(net, &sample, threads).expect("batch"));
        }));
    }
    let to_pps = |ns: u64| {
        (sample.len() as u64 * 1_000_000_000)
            .checked_div(ns)
            .unwrap_or(0)
    };
    let batch_seq_pps = to_pps(batch_seq_ns);
    let batch_par_pps = to_pps(batch_par_ns);

    Row {
        network: net.name(),
        k,
        legacy_ns,
        scg_route_ns,
        planner_ns,
        packed_ns,
        batch_seq_pps,
        batch_par_pps,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (budget, pairs) = if smoke {
        (Duration::from_millis(8), SMOKE_PAIRS)
    } else {
        (Duration::from_millis(150), FULL_PAIRS)
    };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // All ten classes at k = 5, then the large shapes: plans are O(k²),
    // so k = 9 and k = 13 route without ever materializing 9!/13! nodes.
    let mut hosts = scg_bench::all_class_hosts_k5().expect("k=5 classes");
    hosts.extend([
        SuperCayleyGraph::macro_star(4, 2).expect("MS(4,2)"),
        SuperCayleyGraph::complete_rotation_star(4, 2).expect("Complete-RS(4,2)"),
        SuperCayleyGraph::insertion_selection(9).expect("IS(9)"),
        SuperCayleyGraph::macro_is(4, 2).expect("MIS(4,2)"),
        SuperCayleyGraph::macro_star(6, 2).expect("MS(6,2)"),
    ]);

    println!(
        "== Routing hot path: legacy vs compiled plan ({} mode, {threads} threads) ==",
        if smoke { "smoke" } else { "full" }
    );
    let mut t = Table::new(&[
        "network",
        "k",
        "legacy ns",
        "scg_route ns",
        "planner ns",
        "packed ns",
        "speedup",
        "batch seq p/s",
        "batch par p/s",
    ]);
    let mut rows = Vec::new();
    for net in &hosts {
        let row = measure_class(net, budget, pairs, threads);
        println!(
            "{}: legacy {} ns -> scg_route {} ns (x{}.{:03}), planner {} ns -> packed {} ns",
            row.network,
            row.legacy_ns,
            row.scg_route_ns,
            row.speedup_x1000() / 1000,
            row.speedup_x1000() % 1000,
            row.planner_ns,
            row.packed_ns
        );
        t.row(&[
            row.network.clone(),
            row.k.to_string(),
            row.legacy_ns.to_string(),
            row.scg_route_ns.to_string(),
            row.planner_ns.to_string(),
            row.packed_ns.to_string(),
            format!(
                "{}.{:03}x",
                row.speedup_x1000() / 1000,
                row.speedup_x1000() % 1000
            ),
            row.batch_seq_pps.to_string(),
            row.batch_par_pps.to_string(),
        ]);
        rows.push(row);
    }

    // The acceptance row: the first k >= 9 class in the sweep. The
    // packed-vs-planner regression gate tolerates timer noise only.
    let accept = rows
        .iter()
        .find(|r| r.k >= 9)
        .expect("sweep includes k >= 9 classes");
    let slack_pct = if smoke {
        SMOKE_SLACK_PCT
    } else {
        FULL_SLACK_PCT
    };
    let packed_le_planner = accept.packed_ns * 100 <= accept.planner_ns * slack_pct;
    let batch_slack_pct = if smoke {
        SMOKE_BATCH_PAR_SLACK_PCT
    } else {
        FULL_BATCH_PAR_SLACK_PCT
    };
    let batch_par_ge_seq = accept.batch_par_pps * 100 >= accept.batch_seq_pps * batch_slack_pct;

    let mut json = String::from("{\"bench\":\"bench_routing\",");
    json.push_str(&format!(
        "\"mode\":\"{}\",\"threads\":{threads},\"pairs_per_class\":{pairs},\"classes\":[",
        if smoke { "smoke" } else { "full" }
    ));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"network\":\"{}\",\"k\":{},\"legacy_single_ns\":{},\"scg_route_single_ns\":{},\
             \"planner_scan_single_ns\":{},\"packed_single_ns\":{},\"speedup_x1000\":{},\
             \"batch_seq_pairs_per_s\":{},\"batch_par_pairs_per_s\":{}}}",
            json_escape(&r.network),
            r.k,
            r.legacy_ns,
            r.scg_route_ns,
            r.planner_ns,
            r.packed_ns,
            r.speedup_x1000(),
            r.batch_seq_pps,
            r.batch_par_pps
        ));
    }
    json.push_str(&format!(
        "],\"acceptance\":{{\"network\":\"{}\",\"k\":{},\"legacy_single_ns\":{},\
         \"scg_route_single_ns\":{},\"planner_single_ns\":{},\"packed_single_ns\":{},\
         \"speedup_x1000\":{},\"meets_3x\":{},\"packed_le_planner\":{},\
         \"batch_seq_pairs_per_s\":{},\"batch_par_pairs_per_s\":{},\"batch_par_ge_seq\":{}}}}}",
        json_escape(&accept.network),
        accept.k,
        accept.legacy_ns,
        accept.scg_route_ns,
        accept.planner_ns,
        accept.packed_ns,
        accept.speedup_x1000(),
        u8::from(accept.speedup_x1000() >= 3000),
        u8::from(packed_le_planner),
        accept.batch_seq_pps,
        accept.batch_par_pps,
        u8::from(batch_par_ge_seq)
    ));

    // The artifact must parse back through the shared hand-rolled parser
    // before it is trustworthy.
    let parsed = scg_obs::json::parse(&json).expect("BENCH_routing.json parses");
    let top = parsed.as_object(0).expect("top-level object");
    let acc = top["acceptance"].as_object(0).expect("acceptance object");
    assert!(acc["speedup_x1000"].as_u64(0).expect("speedup int") > 0);
    assert_eq!(
        top["classes"].as_array(0).expect("classes array").len(),
        rows.len()
    );

    let results = std::path::Path::new("results");
    std::fs::create_dir_all(results).expect("results/ creatable");
    let table = t.render();
    let mut report = String::new();
    report.push_str("== Routing hot path: legacy vs compiled plan ==\n\n");
    report.push_str(&format!(
        "mode: {}; {threads} threads; {pairs} fixed-seed pairs per class.\n",
        if smoke { "smoke" } else { "full" }
    ));
    report.push_str(
        "legacy = pre-planner scg_route (fresh StarEmulation + per-hop Vec cascade);\n\
         scg_route = plan-cache lookup + slice copies; planner = pre-packed\n\
         byte-array star-sort over held-plan star_link slices; packed = held\n\
         plan + bit-packed u64 star-sort via route_into into a reused RouteBuf\n\
         (allocation-free steady state). Batch columns are route_batch\n\
         pairs/second at 1 thread and at full parallelism, on packed\n\
         structure-of-arrays lanes.\n\n",
    );
    report.push_str(&table);
    report.push_str(&format!(
        "\nAcceptance (k >= 9): {} legacy {} ns vs scg_route {} ns -> {}.{:03}x;\n\
         planner {} ns vs packed {} ns (packed_le_planner = {});\n\
         batch seq {} p/s vs par {} p/s, interleaved min-of-3 \
         (batch_par_ge_seq = {})\n",
        accept.network,
        accept.legacy_ns,
        accept.scg_route_ns,
        accept.speedup_x1000() / 1000,
        accept.speedup_x1000() % 1000,
        accept.planner_ns,
        accept.packed_ns,
        u8::from(packed_le_planner),
        accept.batch_seq_pps,
        accept.batch_par_pps,
        u8::from(batch_par_ge_seq)
    ));
    std::fs::write(results.join("bench_routing.txt"), &report).expect("results/ writable");
    std::fs::write(results.join("BENCH_routing.json"), &json).expect("results/ writable");
    print!("\n{table}");
    println!("\nwrote results/bench_routing.txt, results/BENCH_routing.json");
    if !smoke {
        assert!(
            accept.speedup_x1000() >= 3000,
            "acceptance: expected >= 3x on {} (k = {}), got {}.{:03}x",
            accept.network,
            accept.k,
            accept.speedup_x1000() / 1000,
            accept.speedup_x1000() % 1000
        );
    }
    assert!(
        packed_le_planner,
        "acceptance: packed kernel regressed past the planner baseline on {} \
         (k = {}): packed {} ns vs planner {} ns (slack {slack_pct}%)",
        accept.network, accept.k, accept.packed_ns, accept.planner_ns
    );
    assert!(
        batch_par_ge_seq,
        "acceptance: parallel batch fell behind sequential on {} (k = {}): \
         par {} pairs/s vs seq {} pairs/s (slack {batch_slack_pct}%)",
        accept.network, accept.k, accept.batch_par_pps, accept.batch_seq_pps
    );
}
