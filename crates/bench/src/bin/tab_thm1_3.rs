//! Experiment `tab_thm1_3`: the SDC emulation theorems. For each
//! emulation-capable host at `k = 7`, the star-graph embedding's measured
//! dilation (= SDC slowdown: Thm 1 → 3, Thm 2 → 2, Thm 3 → 4), mean
//! expansion length, measured congestion vs the claimed `max(2n, l)`, and
//! the worst per-dimension congestion vs the claimed 2.

use scg_bench::{emulation_hosts_k7, f3, Table};
use scg_core::{CayleyNetwork, ScgClass, StarGraph, SuperCayleyGraph};
use scg_embed::CayleyEmbedding;
use scg_emu::SdcReport;

fn main() {
    const CAP: u64 = 50_000;
    let star = StarGraph::new(7).unwrap();
    let mut t = Table::new(&[
        "host",
        "slowdown (worst)",
        "claimed",
        "slowdown (mean)",
        "congestion",
        "claimed max(2n,l)",
        "per-dim congestion",
        "claimed",
    ]);
    println!("== Theorems 1-3: star-graph emulation under the SDC model ==\n");
    for host in emulation_hosts_k7().unwrap() {
        let sdc = SdcReport::measure(&host).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        let e = ce.embedding();
        let (l, n) = (host.levels(), host.box_size());
        let claimed_slowdown = match host.class() {
            ScgClass::MacroStar | ScgClass::CompleteRotationStar => "3".to_string(),
            ScgClass::InsertionSelection => "2".to_string(),
            ScgClass::MacroIs | ScgClass::CompleteRotationIs => "4".to_string(),
            ScgClass::RotationStar => format!("{} (2⌊l/2⌋+1)", 2 * (l / 2) + 1),
            ScgClass::RotationIs => format!("{} (2⌊l/2⌋+2)", 2 * (l / 2) + 2),
            _ => "-".to_string(),
        };
        let claimed_congestion = match host.class() {
            ScgClass::InsertionSelection => "1*".to_string(),
            ScgClass::MacroStar
            | ScgClass::CompleteRotationStar
            | ScgClass::MacroIs
            | ScgClass::CompleteRotationIs => (2 * n).max(l).to_string(),
            _ => "-".to_string(),
        };
        t.row(&[
            host.name(),
            sdc.worst_slowdown.to_string(),
            claimed_slowdown,
            f3(sdc.mean_slowdown),
            e.congestion().to_string(),
            claimed_congestion,
            ce.max_dimension_congestion().to_string(),
            "<= 2".to_string(),
        ]);
    }
    // Extension rows: the rotator-nucleus classes (no theorem in the
    // paper) routed via T_x = I_{x-1}^{x-2} o I_x.
    for host in [
        SuperCayleyGraph::macro_rotator(3, 2).unwrap(),
        SuperCayleyGraph::rotation_rotator(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_rotator(3, 2).unwrap(),
    ] {
        let sdc = SdcReport::measure(&host).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        let n = host.box_size();
        let trip = match host.class() {
            ScgClass::RotationRotator => host.levels() / 2,
            _ => 1,
        };
        t.row(&[
            format!("{} (ext)", host.name()),
            sdc.worst_slowdown.to_string(),
            format!("{} (2 trip+n)", 2 * trip + n),
            scg_bench::f3(sdc.mean_slowdown),
            ce.embedding().congestion().to_string(),
            "-".into(),
            ce.max_dimension_congestion().to_string(),
            "-".into(),
        ]);
    }

    print!("{}", t.render());

    // §3's wormhole/pipelining remark: amortized slowdown for streaming
    // 1000 packets per node along the worst dimension.
    println!("\nPipelined (wormhole-style) amortized slowdown, 1000 packets/node");
    println!("(paper \u{a7}3: ~2 when the bring/return link repeats; measured: exactly the");
    println!("per-dimension congestion \u{2014} 2 for swaps and l=2 rotations, 1 for distinct");
    println!("complete-rotation bring/return links and for IS):");
    for host in emulation_hosts_k7().unwrap() {
        let k = host.degree_k();
        let worst = (2..=k)
            .map(|j| {
                scg_emu::pipelined_dimension_cost(&host, j, 1000)
                    .unwrap()
                    .amortized_slowdown()
            })
            .fold(0.0f64, f64::max);
        println!("  {:<18} {:.3}", host.name(), worst);
    }

    println!("\n(*) the paper counts I_2 and I_2^{{-1}} as parallel links of a directed");
    println!("multigraph; our link-traffic accounting merges each pair, so IS reads 2");
    println!("instead of 1 and MIS/Complete-RIS read 2l instead of max(2n,l) on the");
    println!("merged I_2 link. Unmerged per-generator loads match the claims exactly.");
    println!("All embeddings have load 1 and expansion 1 by construction (checked).");
}
