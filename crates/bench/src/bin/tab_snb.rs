//! Experiment `tab_snb`: the single-source prototype tasks (single-node
//! broadcast, scatter, gather) from the paper's reference task set
//! (Bertsekas–Tsitsiklis; Johnsson–Ho), measured on star baselines and
//! super Cayley hosts.

use scg_bench::{f3, Table};
use scg_comm::{gather_all_port, scatter_all_port, snb_all_port};
use scg_core::{CayleyNetwork, StarGraph, SuperCayleyGraph};

fn main() {
    const CAP: u64 = 50_000;
    let nets: Vec<Box<dyn CayleyNetwork>> = vec![
        Box::new(StarGraph::new(5).unwrap()),
        Box::new(StarGraph::new(6).unwrap()),
        Box::new(SuperCayleyGraph::macro_star(2, 2).unwrap()),
        Box::new(SuperCayleyGraph::macro_star(3, 2).unwrap()),
        Box::new(SuperCayleyGraph::complete_rotation_star(3, 2).unwrap()),
        Box::new(SuperCayleyGraph::insertion_selection(6).unwrap()),
        Box::new(SuperCayleyGraph::macro_is(2, 2).unwrap()),
        Box::new(SuperCayleyGraph::macro_rotator(2, 2).unwrap()),
    ];
    let mut t = Table::new(&[
        "network",
        "N",
        "degree",
        "SNB steps",
        "DL(d,N)",
        "scatter",
        "⌈(N-1)/d⌉",
        "gather",
    ]);
    println!("== Single-source prototype tasks (SNB / scatter / gather) ==\n");
    for net in &nets {
        let snb = snb_all_port(net.as_ref(), CAP).unwrap();
        let (scatter, gather) = if net.num_nodes() <= 1_000 {
            let s = scatter_all_port(net.as_ref(), CAP, 1_000_000).unwrap();
            let g = gather_all_port(net.as_ref(), CAP, 1_000_000).unwrap();
            (s.steps.to_string(), g.steps.to_string())
        } else {
            ("-".into(), "-".into())
        };
        t.row(&[
            snb.network.clone(),
            snb.num_nodes.to_string(),
            snb.degree.to_string(),
            snb.steps.to_string(),
            snb.lower_bound.to_string(),
            scatter,
            (snb.num_nodes - 1).div_ceil(snb.degree as u64).to_string(),
            gather,
        ]);
        let _ = f3(snb.optimality_ratio());
    }
    print!("{}", t.render());
    println!("\nSNB time equals the source eccentricity (= diameter, by transitivity);");
    println!("scatter/gather track the source-link volume bound ⌈(N-1)/d⌉.");
}
