//! Experiment `tab_mnb`: multinode broadcast completion times
//! (Corollary 2). All-port MNB on star baselines and super Cayley hosts vs
//! the `⌈(N−1)/d⌉` lower bound, and the strictly optimal `N−1`-step SDC
//! MNB via Hamiltonian generator words.

use scg_bench::{f3, Table};
use scg_comm::{mnb_all_port, mnb_sdc};
use scg_core::{CayleyNetwork, StarGraph, SuperCayleyGraph};
use scg_graph::SearchBudget;

fn main() {
    const CAP: u64 = 50_000;
    println!("== Corollary 2: multinode broadcast ==\n");
    let mut t = Table::new(&[
        "network",
        "N",
        "degree",
        "model",
        "steps",
        "lower bound",
        "ratio",
    ]);

    // All-port.
    let stars: Vec<Box<dyn CayleyNetwork>> = vec![
        Box::new(StarGraph::new(5).unwrap()),
        Box::new(StarGraph::new(6).unwrap()),
        Box::new(StarGraph::new(7).unwrap()),
    ];
    for net in &stars {
        let r = mnb_all_port(net.as_ref(), CAP).unwrap();
        t.row(&[
            r.network.clone(),
            r.num_nodes.to_string(),
            r.degree.to_string(),
            "all-port".into(),
            r.steps.to_string(),
            r.lower_bound.to_string(),
            f3(r.optimality_ratio()),
        ]);
    }
    for host in [
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
        SuperCayleyGraph::macro_is(3, 2).unwrap(),
    ] {
        let r = mnb_all_port(&host, CAP).unwrap();
        t.row(&[
            r.network.clone(),
            r.num_nodes.to_string(),
            r.degree.to_string(),
            "all-port".into(),
            r.steps.to_string(),
            r.lower_bound.to_string(),
            f3(r.optimality_ratio()),
        ]);
    }

    // SDC (strictly optimal N-1 where the Hamiltonian word is found).
    let sdc_cases: Vec<Box<dyn CayleyNetwork>> = vec![
        Box::new(StarGraph::new(4).unwrap()),
        Box::new(StarGraph::new(5).unwrap()),
        Box::new(SuperCayleyGraph::insertion_selection(5).unwrap()),
        Box::new(SuperCayleyGraph::complete_rotation_star(2, 2).unwrap()),
    ];
    for net in &sdc_cases {
        match mnb_sdc(net.as_ref(), CAP, &mut SearchBudget::new(500_000_000)) {
            Ok(r) => t.row(&[
                r.network.clone(),
                r.num_nodes.to_string(),
                r.degree.to_string(),
                "SDC".into(),
                r.steps.to_string(),
                r.lower_bound.to_string(),
                f3(r.optimality_ratio()),
            ]),
            Err(e) => t.row(&[
                net.name(),
                net.num_nodes().to_string(),
                net.node_degree().to_string(),
                "SDC".into(),
                format!("({e})"),
                String::new(),
                String::new(),
            ]),
        }
    }
    print!("{}", t.render());
    println!("\nSDC steps = N-1 reproduces the strictly optimal k!-1 of Mišić-Jovanović;");
    println!("all-port ratios near 1 reproduce the Θ(N/d) optimality of Corollary 2.");
}
