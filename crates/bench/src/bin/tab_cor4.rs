//! Experiment `tab_cor4`: complete-binary-tree embeddings. Certifies the
//! dilation-1 tree-into-star premise by exact search (including the
//! height-(2k−5) = height-5 tree in the 5-star, the paper's k = 5 case)
//! and measures the composed dilations: 2 into IS, 3 into MS/Complete-RS,
//! 4 into MIS/Complete-RIS.

use scg_bench::Table;
use scg_core::SuperCayleyGraph;
use scg_embed::{tree_into_scg, tree_into_star};
use scg_graph::SearchBudget;

fn main() {
    println!("== Corollary 4: complete binary trees ==\n");

    // Premise: dilation-1 embeddings into the star (searched, exact).
    let mut t = Table::new(&["tree height", "nodes", "host", "dilation", "status"]);
    for (height, k) in [
        (2u32, 4usize),
        (3, 5),
        (4, 5),
        (5, 5),
        (5, 6),
        (6, 6),
        (7, 6),
    ] {
        let budget = &mut SearchBudget::new(2_000_000_000);
        match tree_into_star(height, k, budget) {
            Ok(e) => t.row(&[
                height.to_string(),
                ((1u64 << (height + 1)) - 1).to_string(),
                format!("{k}-star"),
                e.dilation().to_string(),
                "found (certified)".into(),
            ]),
            Err(scg_embed::EmbedError::Unsupported { .. }) => t.row(&[
                height.to_string(),
                ((1u64 << (height + 1)) - 1).to_string(),
                format!("{k}-star"),
                "-".into(),
                "none exists (exhausted)".into(),
            ]),
            Err(scg_embed::EmbedError::SearchInconclusive) => t.row(&[
                height.to_string(),
                ((1u64 << (height + 1)) - 1).to_string(),
                format!("{k}-star"),
                "-".into(),
                "inconclusive (budget)".into(),
            ]),
            Err(e) => t.row(&[
                height.to_string(),
                String::new(),
                format!("{k}-star"),
                "-".into(),
                format!("error: {e}"),
            ]),
        }
    }
    print!("{}", t.render());
    println!("\npaper premise [5]: height 2k-5 embeds in the k-star with dilation 1 —");
    println!("certified here for k = 5 (height 5) and k = 6 (height 7).\n");

    // Composition into super Cayley hosts.
    let mut t2 = Table::new(&["tree height", "host", "dilation", "claimed"]);
    let hosts: Vec<(SuperCayleyGraph, &str)> = vec![
        (SuperCayleyGraph::insertion_selection(5).unwrap(), "2"),
        (SuperCayleyGraph::macro_star(2, 2).unwrap(), "3"),
        (SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(), "3"),
        (SuperCayleyGraph::macro_is(2, 2).unwrap(), "4"),
        (SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(), "4"),
    ];
    for (host, claim) in hosts {
        let budget = &mut SearchBudget::new(2_000_000_000);
        let e = tree_into_scg(4, &host, budget).expect("height-4 tree embeds in 5-star");
        t2.row(&[
            "4".into(),
            scg_core::CayleyNetwork::name(&host),
            e.dilation().to_string(),
            (*claim).to_string(),
        ]);
    }
    print!("{}", t2.render());
}
