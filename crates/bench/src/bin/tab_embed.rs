//! Experiment `tab_embed`: the arena-backed embedding engine, end to end.
//!
//! For each of the ten Table II classes at `k = 5` (120 nodes), builds the
//! Corollary 5 hypercube guest through the shared [`EmbeddingIr`] pipeline
//! (cube → `k`-TN → host composition), measures the build wall time, and
//! audits the result (load, dilation, congestion, expansion, mean path
//! length). Then sweeps *every* single-node [`FaultSet`] over the host:
//! faults on a node carrying a guest node must report
//! [`EmbedError::MappedNodeFailed`]; every other fault must yield a valid
//! re-embedding, whose worst dilation is recorded.
//!
//! Writes the human table to `results/tab_embed.txt` and the
//! machine-readable record to `results/BENCH_embed.json` (integers only;
//! validated by parsing it back through [`scg_obs::json`]). `--smoke`
//! samples the fault sweep for CI, keeping every correctness cross-check.
//!
//! [`EmbeddingIr`]: scg_embed::EmbeddingIr
//! [`FaultSet`]: scg_graph::FaultSet
//! [`EmbedError::MappedNodeFailed`]: scg_embed::EmbedError::MappedNodeFailed

use std::collections::HashSet;
use std::time::Instant;

use scg_bench::{all_class_hosts_k5, f3, Table};
use scg_core::{materialize, CayleyNetwork, SMALL_NET_CAP};
use scg_embed::{hypercube_into_scg, reembed_scg, EmbedError};
use scg_graph::{FaultSet, NodeId};

/// One measured per-class row.
struct Row {
    network: String,
    nodes: usize,
    build_micros: u64,
    load: usize,
    dilation: usize,
    congestion: usize,
    expansion_x1000: u64,
    mean_len_x1000: u64,
    faults_tried: usize,
    mapped_faults: usize,
    reembed_ok: usize,
    max_dilation_after: usize,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke mode samples every `stride`-th host node as the fault victim;
    // full mode tries all of them.
    let stride = if smoke { 7 } else { 1 };

    println!(
        "== Embedding engine: IR builds, audits, and single-fault re-embedding ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );
    let mut t = Table::new(&[
        "network",
        "nodes",
        "build us",
        "load",
        "dilation",
        "congestion",
        "expansion",
        "mean len",
        "faults",
        "mapped",
        "reembed ok",
        "max dil after",
    ]);

    let mut rows = Vec::new();
    for net in all_class_hosts_k5().expect("k=5 classes") {
        let start = Instant::now();
        let e = hypercube_into_scg(&net, SMALL_NET_CAP).expect("Corollary 5 composition");
        let build_micros = start.elapsed().as_micros() as u64;
        let ir = e.into_ir();
        let audit = ir.audit();
        let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
        let mapped: HashSet<NodeId> = ir.node_map().iter().copied().collect();

        // The acceptance sweep: every single-node fault either hits a
        // mapped node (structured refusal) or must re-embed validly.
        let mut faults_tried = 0usize;
        let mut mapped_faults = 0usize;
        let mut reembed_ok = 0usize;
        let mut max_dilation_after = 0usize;
        for victim in (0..mat.num_nodes() as NodeId).step_by(stride) {
            faults_tried += 1;
            let mut faults = FaultSet::new();
            faults.fail_node(victim);
            match reembed_scg(&ir, &net, &mat, &faults) {
                Ok(r) => {
                    // `reembed` re-validates through `from_parts`, so an Ok
                    // result is already a certificate; cross-check the
                    // invariants the paper cares about anyway.
                    assert_eq!(r.load(), ir.load(), "{}: load changed", net.name());
                    assert_eq!(
                        r.node_map(),
                        ir.node_map(),
                        "{}: node map changed",
                        net.name()
                    );
                    max_dilation_after = max_dilation_after.max(r.dilation());
                    reembed_ok += 1;
                }
                Err(EmbedError::MappedNodeFailed { host_node, .. }) => {
                    assert_eq!(host_node, victim, "{}: wrong victim reported", net.name());
                    assert!(
                        mapped.contains(&victim),
                        "{}: refusal on unmapped node {victim}",
                        net.name()
                    );
                    mapped_faults += 1;
                }
                Err(other) => panic!("{}: fault {victim}: {other}", net.name()),
            }
        }
        assert_eq!(
            reembed_ok + mapped_faults,
            faults_tried,
            "{}: every fault must be classified",
            net.name()
        );

        let row = Row {
            network: net.name(),
            nodes: mat.num_nodes(),
            build_micros,
            load: audit.load,
            dilation: audit.dilation,
            congestion: audit.congestion,
            expansion_x1000: (audit.expansion * 1000.0).round() as u64,
            mean_len_x1000: (audit.mean_path_length * 1000.0).round() as u64,
            faults_tried,
            mapped_faults,
            reembed_ok,
            max_dilation_after,
        };
        println!(
            "{}: build {} us, dilation {} -> max {} under single faults ({}/{} re-embedded)",
            row.network,
            row.build_micros,
            row.dilation,
            row.max_dilation_after,
            row.reembed_ok,
            row.faults_tried
        );
        t.row(&[
            row.network.clone(),
            row.nodes.to_string(),
            row.build_micros.to_string(),
            row.load.to_string(),
            row.dilation.to_string(),
            row.congestion.to_string(),
            f3(row.expansion_x1000 as f64 / 1000.0),
            f3(row.mean_len_x1000 as f64 / 1000.0),
            row.faults_tried.to_string(),
            row.mapped_faults.to_string(),
            row.reembed_ok.to_string(),
            row.max_dilation_after.to_string(),
        ]);
        rows.push(row);
    }

    let all_reembedded = rows
        .iter()
        .all(|r| r.reembed_ok + r.mapped_faults == r.faults_tried);
    let worst_dilation_after = rows.iter().map(|r| r.max_dilation_after).max().unwrap_or(0);

    let mut json = String::from("{\"bench\":\"tab_embed\",");
    json.push_str(&format!(
        "\"mode\":\"{}\",\"guest\":\"hypercube\",\"k\":5,\"fault_stride\":{stride},\"classes\":[",
        if smoke { "smoke" } else { "full" }
    ));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"network\":\"{}\",\"nodes\":{},\"build_micros\":{},\"load\":{},\
             \"dilation\":{},\"congestion\":{},\"expansion_x1000\":{},\
             \"mean_path_len_x1000\":{},\"faults_tried\":{},\"mapped_faults\":{},\
             \"reembed_ok\":{},\"max_dilation_after\":{}}}",
            json_escape(&r.network),
            r.nodes,
            r.build_micros,
            r.load,
            r.dilation,
            r.congestion,
            r.expansion_x1000,
            r.mean_len_x1000,
            r.faults_tried,
            r.mapped_faults,
            r.reembed_ok,
            r.max_dilation_after
        ));
    }
    json.push_str(&format!(
        "],\"acceptance\":{{\"all_single_faults_handled\":{},\"worst_dilation_after\":{}}}}}",
        u8::from(all_reembedded),
        worst_dilation_after
    ));

    // The artifact must parse back through the shared hand-rolled parser
    // before it is trustworthy.
    let parsed = scg_obs::json::parse(&json).expect("BENCH_embed.json parses");
    let top = parsed.as_object(0).expect("top-level object");
    let acc = top["acceptance"].as_object(0).expect("acceptance object");
    assert_eq!(
        acc["all_single_faults_handled"]
            .as_u64(0)
            .expect("flag int"),
        1,
        "acceptance: some single-node fault was neither re-embedded nor refused"
    );
    assert_eq!(
        top["classes"].as_array(0).expect("classes array").len(),
        rows.len()
    );

    let results = std::path::Path::new("results");
    std::fs::create_dir_all(results).expect("results/ creatable");
    let table = t.render();
    let mut report = String::new();
    report.push_str("== Embedding engine: IR builds, audits, and single-fault re-embedding ==\n\n");
    report.push_str(&format!(
        "mode: {}; Corollary 5 hypercube guest (cube -> 5-TN -> host), every\n\
         single-node FaultSet at stride {stride}. Faults on a mapped host node are\n\
         refused structurally (MappedNodeFailed); all others must re-embed to a\n\
         validated IR with the node map and load unchanged.\n\n",
        if smoke { "smoke" } else { "full" },
    ));
    report.push_str(&table);
    report.push_str(&format!(
        "\nAcceptance: every fault handled on all {} classes; worst dilation\n\
         after a single fault: {} (vs fault-free worst {}).\n",
        rows.len(),
        worst_dilation_after,
        rows.iter().map(|r| r.dilation).max().unwrap_or(0)
    ));
    std::fs::write(results.join("tab_embed.txt"), &report).expect("results/ writable");
    std::fs::write(results.join("BENCH_embed.json"), &json).expect("results/ writable");
    print!("\n{table}");
    println!("\nwrote results/tab_embed.txt, results/BENCH_embed.json");
    assert!(all_reembedded, "acceptance failed");
}
