//! Experiment `tab_thm4_5`: all-port emulation slowdowns. For a grid of
//! `(l, n)` shapes — including the non-`rn+1` shapes the paper handles by
//! schedule modification — the scheduler's achieved makespan vs the
//! theorem bound (`max(2n, l+1)` for MS/Complete-RS, `max(2n, l+2)` for
//! MIS/Complete-RIS), plus utilization.

use scg_bench::{f3, Table};
use scg_core::{ScgClass, SuperCayleyGraph};
use scg_emu::AllPortSchedule;

fn main() {
    let shapes = [
        (2usize, 2usize),
        (3, 2),
        (4, 2),
        (5, 2),
        (2, 3),
        (3, 3),
        (4, 3),
        (5, 3),
        (6, 3),
        (2, 4),
        (3, 4),
        (4, 4),
    ];
    let classes = [
        ScgClass::MacroStar,
        ScgClass::CompleteRotationStar,
        ScgClass::MacroIs,
        ScgClass::CompleteRotationIs,
    ];
    let mut t = Table::new(&[
        "host",
        "k",
        "makespan",
        "theorem bound",
        "tight?",
        "hops",
        "utilization",
    ]);
    println!("== Theorems 4-5: all-port star emulation slowdown ==\n");
    for class in classes {
        for (l, n) in shapes {
            let Ok(host) = SuperCayleyGraph::new(class, l, n) else {
                continue;
            };
            let s = AllPortSchedule::build(&host).expect("emulation-capable");
            s.validate().expect("valid schedule");
            let bound = s.theoretical_bound().expect("closed-form class");
            t.row(&[
                s.host_name().to_string(),
                (l * n + 1).to_string(),
                s.makespan().to_string(),
                bound.to_string(),
                if s.makespan() == bound {
                    "yes".into()
                } else {
                    format!("NO ({:+})", s.makespan() as i64 - bound as i64)
                },
                s.total_hops().to_string(),
                f3(s.utilization()),
            ]);
        }
    }
    // IS networks (Theorem 2's all-port slowdown 2).
    for k in [4usize, 7, 10, 13] {
        let host = SuperCayleyGraph::insertion_selection(k).unwrap();
        let s = AllPortSchedule::build(&host).unwrap();
        t.row(&[
            s.host_name().to_string(),
            k.to_string(),
            s.makespan().to_string(),
            "2".into(),
            if s.makespan() == 2 {
                "yes".into()
            } else {
                "NO".into()
            },
            s.total_hops().to_string(),
            f3(s.utilization()),
        ]);
    }
    print!("{}", t.render());
    println!("\nNote: MIS(2,2)/Complete-RIS(2,2) exceed the Theorem 5 constant by 1 —");
    println!("the single box's 4-hop chain pins the swap link to times {{1,4}}, leaving");
    println!("no interior pair for the second chain (the theorem's constant is loose");
    println!("at this smallest shape; every other shape is tight).");
}
