//! Experiment `tab_cor6_7`: mesh and linear-array embeddings. The
//! `k!`-node linear array rides a Hamiltonian path (dilation 1); the
//! `2×3×⋯×k` factorial mesh and arbitrary `m1 × m2 = k!` splits embed in
//! the `k`-TN with dilation ≤ 2 (Gray-coded inverse-Fisher–Yates map) and
//! compose into constant dilation on the super Cayley hosts.

use scg_bench::{f3, Table};
use scg_core::{CayleyNetwork, SuperCayleyGraph};
use scg_embed::{
    factorial_mesh_into_scg, factorial_mesh_into_tn, linear_array_into_star, mesh2d_into_scg,
    mesh2d_into_tn,
};
use scg_graph::SearchBudget;

fn main() {
    const CAP: u64 = 50_000;
    println!("== Corollaries 6-7: mesh embeddings ==\n");
    let mut t = Table::new(&[
        "guest",
        "host",
        "dilation",
        "claimed",
        "load",
        "expansion",
        "congestion",
    ]);

    // Linear arrays (Hamiltonian paths).
    for k in [4usize, 5] {
        let e = linear_array_into_star(k, CAP, &mut SearchBudget::new(500_000_000)).unwrap();
        t.row(&[
            format!("{}-node linear array", e.guest().num_nodes()),
            format!("{k}-star"),
            e.dilation().to_string(),
            "1".into(),
            e.load().to_string(),
            f3(e.expansion()),
            e.congestion().to_string(),
        ]);
    }

    // Factorial meshes into TNs (Corollary 7 guest).
    for k in [5usize, 6] {
        let e = factorial_mesh_into_tn(k, CAP).unwrap();
        t.row(&[
            format!("2x3x..x{k} mesh"),
            format!("{k}-TN"),
            e.dilation().to_string(),
            "<= 2 (paper: 1 via [12])".into(),
            e.load().to_string(),
            f3(e.expansion()),
            e.congestion().to_string(),
        ]);
    }

    // 2-D splits m1 × m2 = k! (Corollary 6 guest).
    for (k, rows, label) in [
        (5usize, vec![5usize], "5 x 24"),
        (5, vec![2, 3], "6 x 20"),
        (6, vec![4, 5], "20 x 36"),
    ] {
        let e = mesh2d_into_tn(k, &rows, CAP).unwrap();
        t.row(&[
            format!("{label} mesh"),
            format!("{k}-TN"),
            e.dilation().to_string(),
            "<= 2".into(),
            e.load().to_string(),
            f3(e.expansion()),
            e.congestion().to_string(),
        ]);
    }

    // Composed into super Cayley hosts.
    for host in [
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
        SuperCayleyGraph::macro_is(2, 2).unwrap(),
    ] {
        let e = factorial_mesh_into_scg(&host, CAP).unwrap();
        t.row(&[
            "2x3x4x5 mesh".into(),
            host.name(),
            e.dilation().to_string(),
            "O(1)".into(),
            e.load().to_string(),
            f3(e.expansion()),
            e.congestion().to_string(),
        ]);
        let e2 = mesh2d_into_scg(&host, &[5], CAP).unwrap();
        t.row(&[
            "5 x 24 mesh".into(),
            host.name(),
            e2.dilation().to_string(),
            "O(1) (paper: 5 on MS(2,n))".into(),
            e2.load().to_string(),
            f3(e2.expansion()),
            e2.congestion().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nSubstitution note: the paper reaches dilation 1 into the TN via the");
    println!("Latifi-Srimani construction; our Gray-coded map gives dilation <= 2,");
    println!("so composed constants are at most 2x the paper's (still O(1)).");
}
