//! Experiment `tab_bag`: the §2 game ↔ network correspondence, made
//! executable. For each class at `k = 5`, random scrambles of the
//! ball-arrangement game are solved by (a) the network router and (b)
//! exact BFS; minimal move counts must equal graph distances, and the
//! game's "God's number" equals the network diameter.

use scg_bag::BagGame;
use scg_bench::{all_class_hosts_k5, f3, Table};
use scg_core::{CayleyNetwork, NetworkReport};

fn main() {
    const CAP: u64 = 50_000;
    let mut rng = scg_perm::XorShift64::new(1999);
    let mut t = Table::new(&[
        "game rules",
        "balls",
        "boxes",
        "scrambles",
        "router moves (mean)",
        "optimal moves (mean)",
        "God's number",
        "= diameter?",
    ]);
    println!("== §2: ball-arrangement game ↔ routing correspondence ==\n");
    for host in all_class_hosts_k5().unwrap() {
        let report = NetworkReport::measure(&host, CAP).unwrap();
        let game = BagGame::new(host.clone());
        let trials = 30;
        let mut router_total = 0usize;
        let mut optimal_total = 0usize;
        for _ in 0..trials {
            let c = game.scramble(25, &mut rng);
            let sol = game.solve(&c).unwrap();
            let opt = game.solve_optimal(&c, 1_000_000).unwrap();
            assert!(game.replay(&c, &sol).unwrap().is_solved());
            assert!(game.replay(&c, &opt).unwrap().is_solved());
            assert!(opt.len() <= sol.len());
            router_total += sol.len();
            optimal_total += opt.len();
        }
        // God's number: the farthest configuration = network diameter.
        t.row(&[
            host.name(),
            host.degree_k().to_string(),
            host.levels().to_string(),
            trials.to_string(),
            f3(router_total as f64 / trials as f64),
            f3(optimal_total as f64 / trials as f64),
            report.diameter.to_string(),
            "yes (by construction)".into(),
        ]);
    }
    print!("{}", t.render());
    println!("\nEvery solver output was replayed and verified to sort the balls;");
    println!("optimal move counts are exact BFS distances in the network.");
}
