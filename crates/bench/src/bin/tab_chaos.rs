//! Experiment `tab_chaos`: the dynamic fault lifecycle, end to end.
//!
//! For each of the ten Table II classes at `k = 5` (120 nodes), replays
//! four canned [`FaultSchedule`]s — a single permanent node fault, a burst
//! of `degree − 1` simultaneous node faults, a flapping link, and a
//! fault-then-repair transient — through the self-healing emulator loop
//! ([`run_chaos`]): live traffic, in-place [`TableRouter`] refreshes on
//! every fault-set epoch change, and bounded exponential backoff for
//! packets caught without a live route. Records delivered-ratio
//! degradation curves and per-event MTTR (cycles to a healthy router and
//! no stranded traffic).
//!
//! On top of that, the multi-fault re-embedding acceptance: two
//! simultaneous faults on *unmapped* hosts must re-embed with zero
//! remaps, and killing a *mapped* host (plus an unmapped one) must be
//! refused by the fixed-map `reembed_scg` but healed by
//! [`reembed_scg_rebalanced`] — remapping, not just re-routing.
//!
//! Writes `results/tab_chaos.txt` and `results/BENCH_chaos.json`
//! (integers only; validated by parsing back through [`scg_obs::json`]).
//! `--smoke` shortens the traffic phase for CI, keeping every acceptance
//! cross-check.
//!
//! [`FaultSchedule`]: scg_graph::FaultSchedule
//! [`TableRouter`]: scg_emu::TableRouter
//! [`run_chaos`]: scg_emu::run_chaos
//! [`reembed_scg_rebalanced`]: scg_embed::reembed_scg_rebalanced

use std::collections::HashSet;

use scg_bench::{all_class_hosts_k5, Table};
use scg_core::{materialize, CayleyNetwork, SMALL_NET_CAP};
use scg_embed::{hypercube_into_scg, reembed_scg, reembed_scg_rebalanced, EmbedError};
use scg_emu::{run_chaos, ChaosConfig, ChaosReport, PortModel};
use scg_graph::{FaultSchedule, NodeId, SurvivorView};
use scg_perm::XorShift64;

/// One (class, schedule) measurement.
struct SchedRow {
    name: &'static str,
    events: usize,
    report: ChaosReport,
}

impl SchedRow {
    fn delivered_x1000(&self) -> u64 {
        let s = &self.report.stats;
        (s.delivered * 1000)
            .checked_div(s.delivered + s.dropped + s.undelivered)
            .unwrap_or(1000)
    }
}

/// Per-class re-embedding acceptance numbers.
struct ReembedRow {
    two_unmapped_ok: bool,
    mapped_refused_plain: bool,
    remapped: usize,
    rerouted: usize,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let inject_until = if smoke { 80 } else { 400 };
    println!(
        "== Chaos sweep: canned fault schedules through the self-healing loop ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );
    let mut t = Table::new(&[
        "network",
        "schedule",
        "events",
        "injected",
        "delivered",
        "dropped",
        "recovered",
        "refreshes",
        "dlvr x1000",
        "dip x1000",
        "mttr",
    ]);

    let mut class_json = Vec::new();
    let mut worst_repair_x1000 = 1000u64;
    let mut worst_repair_mttr = 0u64;
    let mut all_repair_recovered = true;
    let mut all_reembeds_ok = true;

    for net in all_class_hosts_k5().expect("k=5 classes") {
        let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
        let graph = mat.graph();
        let degree = {
            let mut v = graph.out_neighbors(0).to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        let mut rng = XorShift64::new(0xC4_05 ^ mat.num_nodes() as u64 ^ degree as u64);
        fn distinct(rng: &mut XorShift64, nodes: usize, n: usize) -> Vec<NodeId> {
            let mut picked: Vec<NodeId> = Vec::with_capacity(n);
            while picked.len() < n {
                let u = rng.gen_range(nodes) as NodeId;
                if !picked.contains(&u) {
                    picked.push(u);
                }
            }
            picked
        }
        let single_victim = distinct(&mut rng, mat.num_nodes(), 1)[0];
        let burst_victims = distinct(&mut rng, mat.num_nodes(), degree - 1);
        let (flap_u, flap_v) = graph.edge_endpoints(rng.gen_range(graph.num_edges()));
        let repair_victim = distinct(&mut rng, mat.num_nodes(), 1)[0];
        let schedules: Vec<(&'static str, FaultSchedule)> = vec![
            ("single", FaultSchedule::single_fault(16, single_victim)),
            ("burst", FaultSchedule::burst(16, &burst_victims)),
            (
                "flap",
                FaultSchedule::flapping_link(flap_u, flap_v, 16, 8, 2),
            ),
            (
                "repair",
                FaultSchedule::fault_then_repair(repair_victim, 16, 48),
            ),
        ];

        let mut sched_rows = Vec::new();
        for (idx, (name, mut schedule)) in schedules.into_iter().enumerate() {
            let config = ChaosConfig {
                model: PortModel::AllPort,
                inject_per_cycle: 4,
                inject_until,
                max_cycles: inject_until + 600,
                backoff: (1, 32),
                retry_limit: 8,
                window: 16,
                seed: 0x5C9_CA05 + idx as u64,
            };
            let events = schedule.len();
            let report =
                run_chaos(graph, &mut schedule, &config).expect("schedule within the graph");
            assert!(
                report.drained,
                "{}/{name}: traffic never drained",
                net.name()
            );
            assert_eq!(
                report.stats.delivered + report.stats.dropped,
                report.injected,
                "{}/{name}: packets unaccounted for",
                net.name()
            );
            sched_rows.push(SchedRow {
                name,
                events,
                report,
            });
        }

        // Acceptance: the transient fault heals — delivery stays >= 0.99
        // overall and the event recovers in finitely many cycles.
        let repair = sched_rows
            .iter()
            .find(|r| r.name == "repair")
            .expect("repair schedule present");
        let repair_x1000 = repair.delivered_x1000();
        let repair_mttr = repair.report.mttr_max();
        assert!(
            repair_x1000 >= 990,
            "{}: fault-then-repair delivered ratio {} < 0.99",
            net.name(),
            repair_x1000
        );
        let mttr = repair_mttr.unwrap_or_else(|| {
            panic!(
                "{}: fault-then-repair never reached a healthy cycle",
                net.name()
            )
        });
        worst_repair_x1000 = worst_repair_x1000.min(repair_x1000);
        worst_repair_mttr = worst_repair_mttr.max(mttr);
        all_repair_recovered &= repair_mttr.is_some();

        // Multi-fault re-embedding acceptance.
        let ir = hypercube_into_scg(&net, SMALL_NET_CAP)
            .expect("Corollary 5 composition")
            .into_ir();
        let mapped: HashSet<NodeId> = ir.node_map().iter().copied().collect();
        let mut unmapped = (0..mat.num_nodes() as NodeId).filter(|u| !mapped.contains(u));
        let (u1, u2) = (
            unmapped.next().expect("host larger than guest"),
            unmapped.next().expect("host larger than guest"),
        );
        // Two simultaneous unmapped faults: rebalancing degenerates to the
        // fixed-map path (zero remaps) and every hyperpath stays live.
        let mut faults = scg_graph::FaultSet::new();
        faults.fail_node(u1);
        faults.fail_node(u2);
        let two = reembed_scg_rebalanced(&ir, &net, &mat, &faults)
            .unwrap_or_else(|e| panic!("{}: two unmapped faults: {e}", net.name()));
        let view = SurvivorView::new(mat.graph(), &faults);
        let two_unmapped_ok = two.remapped == 0
            && (0..two.ir.num_program_edges()).all(|e| view.path_is_live(two.ir.hyperpath_at(e)));
        // A mapped host dies (plus an unmapped bystander): the fixed-map
        // reembed must refuse, the rebalancer must remap onto live hosts.
        let mapped_victim = ir.node_map()[0];
        let mut faults2 = scg_graph::FaultSet::new();
        faults2.fail_node(mapped_victim);
        faults2.fail_node(u1);
        let mapped_refused_plain = matches!(
            reembed_scg(&ir, &net, &mat, &faults2),
            Err(EmbedError::MappedNodeFailed { .. })
        );
        let healed = reembed_scg_rebalanced(&ir, &net, &mat, &faults2)
            .unwrap_or_else(|e| panic!("{}: mapped-host fault not healed: {e}", net.name()));
        let view2 = SurvivorView::new(mat.graph(), &faults2);
        let healed_ok = healed.remapped >= 1
            && healed.ir.node_map().iter().all(|&h| view2.is_alive(h))
            && (0..healed.ir.num_program_edges())
                .all(|e| view2.path_is_live(healed.ir.hyperpath_at(e)));
        assert!(
            two_unmapped_ok,
            "{}: unmapped double fault failed",
            net.name()
        );
        assert!(
            mapped_refused_plain,
            "{}: fixed-map reembed did not refuse",
            net.name()
        );
        assert!(healed_ok, "{}: rebalanced embedding invalid", net.name());
        let reembed = ReembedRow {
            two_unmapped_ok,
            mapped_refused_plain,
            remapped: healed.remapped,
            rerouted: healed.rerouted,
        };
        all_reembeds_ok &= two_unmapped_ok && mapped_refused_plain && healed_ok;

        // Table rows + JSON.
        let mut sched_json = Vec::new();
        for r in &sched_rows {
            let s = &r.report.stats;
            let mttr = r.report.mttr_max();
            t.row(&[
                net.name(),
                r.name.into(),
                r.events.to_string(),
                r.report.injected.to_string(),
                s.delivered.to_string(),
                s.dropped.to_string(),
                s.recovered.to_string(),
                r.report.refreshes.to_string(),
                r.delivered_x1000().to_string(),
                r.report.curve_min_x1000().to_string(),
                mttr.map_or("-".into(), |m| m.to_string()),
            ]);
            sched_json.push(format!(
                "{{\"name\":\"{}\",\"events\":{},\"injected\":{},\"rejected\":{},\
                 \"delivered\":{},\"dropped\":{},\"recovered\":{},\"retried\":{},\
                 \"refreshes\":{},\"delivered_x1000\":{},\"curve_min_x1000\":{},\
                 \"mttr_finite\":{},\"mttr\":{},\"drained\":{}}}",
                r.name,
                r.events,
                r.report.injected,
                r.report.rejected,
                s.delivered,
                s.dropped,
                s.recovered,
                s.retried,
                r.report.refreshes,
                r.delivered_x1000(),
                r.report.curve_min_x1000(),
                u8::from(mttr.is_some()),
                mttr.unwrap_or(0),
                u8::from(r.report.drained),
            ));
        }
        println!(
            "{}: repair ratio {}/1000, MTTR {} cycles; rebalance remapped {} rerouted {}",
            net.name(),
            repair_x1000,
            mttr,
            reembed.remapped,
            reembed.rerouted
        );
        class_json.push(format!(
            "{{\"network\":\"{}\",\"nodes\":{},\"degree\":{},\"schedules\":[{}],\
             \"reembed\":{{\"two_unmapped_ok\":{},\"mapped_refused_plain\":{},\
             \"remapped\":{},\"rerouted\":{}}}}}",
            json_escape(&net.name()),
            mat.num_nodes(),
            degree,
            sched_json.join(","),
            u8::from(reembed.two_unmapped_ok),
            u8::from(reembed.mapped_refused_plain),
            reembed.remapped,
            reembed.rerouted
        ));
    }

    let json = format!(
        "{{\"bench\":\"tab_chaos\",\"mode\":\"{}\",\"k\":5,\"inject_until\":{},\
         \"classes\":[{}],\"acceptance\":{{\"all_repair_recovered\":{},\
         \"worst_repair_delivered_x1000\":{},\"worst_repair_mttr\":{},\
         \"all_two_fault_reembeds_ok\":{}}}}}",
        if smoke { "smoke" } else { "full" },
        inject_until,
        class_json.join(","),
        u8::from(all_repair_recovered),
        worst_repair_x1000,
        worst_repair_mttr,
        u8::from(all_reembeds_ok)
    );

    // The artifact must parse back through the shared hand-rolled parser
    // before it is trustworthy.
    let parsed = scg_obs::json::parse(&json).expect("BENCH_chaos.json parses");
    let top = parsed.as_object(0).expect("top-level object");
    let acc = top["acceptance"].as_object(0).expect("acceptance object");
    assert_eq!(acc["all_repair_recovered"].as_u64(0).expect("flag"), 1);
    assert_eq!(acc["all_two_fault_reembeds_ok"].as_u64(0).expect("flag"), 1);
    assert!(acc["worst_repair_delivered_x1000"].as_u64(0).expect("int") >= 990);
    assert_eq!(
        top["classes"].as_array(0).expect("classes").len(),
        class_json.len()
    );

    let results = std::path::Path::new("results");
    std::fs::create_dir_all(results).expect("results/ creatable");
    let table = t.render();
    let mut report = String::new();
    report.push_str("== Chaos sweep: canned fault schedules through the self-healing loop ==\n\n");
    report.push_str(&format!(
        "mode: {}; 4 packets/cycle until cycle {}, then drain. Schedules: one\n\
         permanent node fault, a burst of degree-1 simultaneous node faults, a\n\
         flapping link (2 flaps), and a fault-then-repair transient, all fired at\n\
         cycle 16. The loop refreshes the table router in place on every fault\n\
         epoch change; stuck packets use exponential backoff (base 1, cap 32,\n\
         8 retries). MTTR = cycles from the event to a current router with no\n\
         packet stranded on a dead link. dip x1000 = lowest windowed delivered\n\
         ratio (window 16).\n\n",
        if smoke { "smoke" } else { "full" },
        inject_until
    ));
    report.push_str(&table);
    report.push_str(&format!(
        "\nAcceptance: fault-then-repair recovers on all {} classes (worst overall\n\
         delivered ratio {}/1000, worst MTTR {} cycles), and 2-fault re-embedding\n\
         holds everywhere: two unmapped faults re-embed with zero remaps; a dead\n\
         mapped host is refused by the fixed-map reembed and healed by remapping.\n",
        class_json.len(),
        worst_repair_x1000,
        worst_repair_mttr
    ));
    std::fs::write(results.join("tab_chaos.txt"), &report).expect("results/ writable");
    std::fs::write(results.join("BENCH_chaos.json"), &json).expect("results/ writable");
    print!("\n{table}");
    println!("\nwrote results/tab_chaos.txt, results/BENCH_chaos.json");
}
