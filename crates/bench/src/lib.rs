//! Shared plumbing for the experiment binaries and wall-clock benches that
//! regenerate every figure and theorem-table of the paper.
//!
//! Each experiment id from DESIGN.md has a binary (`cargo run --release -p
//! scg-bench --bin <id>`) printing the reproduced artifact, and a bench
//! (`cargo bench -p scg-bench`) timing its core computation on the
//! [`bench`] harness. This library holds the host rosters and the
//! plain-text table writer they share.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use scg_core::{CoreError, SuperCayleyGraph};

pub mod bench;

/// A plain-text table writer (fixed-width columns, markdown-ish rules).
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str("| ");
                out.push_str(cell);
                out.push_str(&" ".repeat(width[c] - cell.len() + 1));
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        for w in &width {
            out.push('|');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// The emulation-capable hosts at `k = 7` used throughout the theorem
/// tables: `MS(3,2)`, `RS(3,2)`, `Complete-RS(3,2)`, `IS(7)`, `MIS(3,2)`,
/// `RIS(3,2)`, `Complete-RIS(3,2)` plus the `(2,3)` shapes.
///
/// # Errors
///
/// Propagates constructor failures (none for these fixed parameters).
pub fn emulation_hosts_k7() -> Result<Vec<SuperCayleyGraph>, CoreError> {
    Ok(vec![
        SuperCayleyGraph::macro_star(3, 2)?,
        SuperCayleyGraph::macro_star(2, 3)?,
        SuperCayleyGraph::rotation_star(3, 2)?,
        SuperCayleyGraph::complete_rotation_star(3, 2)?,
        SuperCayleyGraph::complete_rotation_star(2, 3)?,
        SuperCayleyGraph::insertion_selection(7)?,
        SuperCayleyGraph::macro_is(3, 2)?,
        SuperCayleyGraph::rotation_is(3, 2)?,
        SuperCayleyGraph::complete_rotation_is(3, 2)?,
    ])
}

/// Every class at its smallest materializable shape (`k = 5`, 120 nodes),
/// including the directed rotator classes.
///
/// # Errors
///
/// Propagates constructor failures (none for these fixed parameters).
pub fn all_class_hosts_k5() -> Result<Vec<SuperCayleyGraph>, CoreError> {
    Ok(vec![
        SuperCayleyGraph::macro_star(2, 2)?,
        SuperCayleyGraph::rotation_star(2, 2)?,
        SuperCayleyGraph::complete_rotation_star(2, 2)?,
        SuperCayleyGraph::macro_rotator(2, 2)?,
        SuperCayleyGraph::rotation_rotator(2, 2)?,
        SuperCayleyGraph::complete_rotation_rotator(2, 2)?,
        SuperCayleyGraph::insertion_selection(5)?,
        SuperCayleyGraph::macro_is(2, 2)?,
        SuperCayleyGraph::rotation_is(2, 2)?,
        SuperCayleyGraph::complete_rotation_is(2, 2)?,
    ])
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into()]);
        let s = t.render();
        assert!(s.contains("| name  | value |"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn rosters_construct() {
        assert_eq!(emulation_hosts_k7().unwrap().len(), 9);
        assert_eq!(all_class_hosts_k5().unwrap().len(), 10);
    }
}
