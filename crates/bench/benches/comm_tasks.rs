//! Benchmarks for `tab_mnb` / `tab_te`: multinode broadcast and total
//! exchange on star baselines and super Cayley hosts.

use scg_bench::bench::Group;
use scg_comm::{mnb_all_port, te_all_port, te_sdc};
use scg_core::{StarGraph, SuperCayleyGraph, SMALL_NET_CAP};

fn main() {
    let mut group = Group::new("comm_tasks");

    let star5 = StarGraph::new(5).unwrap();
    let star6 = StarGraph::new(6).unwrap();
    let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let is6 = SuperCayleyGraph::insertion_selection(6).unwrap();

    group.bench("mnb_all_port_star5", || {
        mnb_all_port(&star5, SMALL_NET_CAP).unwrap()
    });
    group.bench("mnb_all_port_star6", || {
        mnb_all_port(&star6, SMALL_NET_CAP).unwrap()
    });
    group.bench("mnb_all_port_ms_2_2", || {
        mnb_all_port(&ms, SMALL_NET_CAP).unwrap()
    });
    group.bench("te_sdc_star6", || te_sdc(&star6, SMALL_NET_CAP).unwrap());
    group.bench("te_all_port_star5_sim", || {
        te_all_port(&star5, SMALL_NET_CAP, 1_000_000).unwrap()
    });
    group.bench("te_all_port_is6_sim", || {
        te_all_port(&is6, SMALL_NET_CAP, 1_000_000).unwrap()
    });
}
