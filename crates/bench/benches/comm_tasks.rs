//! Benchmarks for `tab_mnb` / `tab_te`: multinode broadcast and total
//! exchange on star baselines and super Cayley hosts.

use criterion::{criterion_group, criterion_main, Criterion};
use scg_comm::{mnb_all_port, te_all_port, te_sdc};
use scg_core::{StarGraph, SuperCayleyGraph};

fn bench_comm(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_tasks");
    group.sample_size(10);

    let star5 = StarGraph::new(5).unwrap();
    let star6 = StarGraph::new(6).unwrap();
    let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let is6 = SuperCayleyGraph::insertion_selection(6).unwrap();

    group.bench_function("mnb_all_port_star5", |b| {
        b.iter(|| mnb_all_port(&star5, 1_000).unwrap());
    });
    group.bench_function("mnb_all_port_star6", |b| {
        b.iter(|| mnb_all_port(&star6, 1_000).unwrap());
    });
    group.bench_function("mnb_all_port_ms_2_2", |b| {
        b.iter(|| mnb_all_port(&ms, 1_000).unwrap());
    });
    group.bench_function("te_sdc_star6", |b| {
        b.iter(|| te_sdc(&star6, 1_000).unwrap());
    });
    group.bench_function("te_all_port_star5_sim", |b| {
        b.iter(|| te_all_port(&star5, 1_000, 1_000_000).unwrap());
    });
    group.bench_function("te_all_port_is6_sim", |b| {
        b.iter(|| te_all_port(&is6, 1_000, 1_000_000).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_comm);
criterion_main!(benches);
