//! Benchmarks for `tab_cor4`–`tab_cor6_7`: constructing the guest
//! embeddings (trees, hypercubes, meshes, linear arrays).

use criterion::{criterion_group, criterion_main, Criterion};
use scg_core::SuperCayleyGraph;
use scg_embed::{
    factorial_mesh_into_tn, hypercube_into_scg, hypercube_into_tn, linear_array_into_star,
    mesh2d_into_tn, tree_into_star,
};
use scg_graph::SearchBudget;

fn bench_guests(c: &mut Criterion) {
    let mut group = c.benchmark_group("guests");
    group.sample_size(10);

    group.bench_function("tree_h3_into_5star_search", |b| {
        b.iter(|| {
            tree_into_star(3, 5, &mut SearchBudget::new(500_000_000))
                .unwrap()
                .dilation()
        });
    });
    group.bench_function("cube_into_tn_k7", |b| {
        b.iter(|| hypercube_into_tn(7, 10_000).unwrap().dilation());
    });
    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    group.bench_function("cube_into_ms_3_2_composed", |b| {
        b.iter(|| hypercube_into_scg(&ms, 10_000).unwrap().dilation());
    });
    group.bench_function("factorial_mesh_into_tn_k6", |b| {
        b.iter(|| factorial_mesh_into_tn(6, 10_000).unwrap().dilation());
    });
    group.bench_function("mesh2d_6x20_into_tn_k5", |b| {
        b.iter(|| mesh2d_into_tn(5, &[2, 3], 10_000).unwrap().dilation());
    });
    group.bench_function("linear_array_into_4star", |b| {
        b.iter(|| {
            linear_array_into_star(4, 1_000, &mut SearchBudget::new(100_000_000))
                .unwrap()
                .dilation()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_guests);
criterion_main!(benches);
