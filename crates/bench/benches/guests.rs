//! Benchmarks for `tab_cor4`–`tab_cor6_7`: constructing the guest
//! embeddings (trees, hypercubes, meshes, linear arrays).

use scg_bench::bench::Group;
use scg_core::SuperCayleyGraph;
use scg_embed::{
    factorial_mesh_into_tn, hypercube_into_scg, hypercube_into_tn, linear_array_into_star,
    mesh2d_into_tn, tree_into_star,
};
use scg_graph::SearchBudget;

fn main() {
    let mut group = Group::new("guests");

    group.bench("tree_h3_into_5star_search", || {
        tree_into_star(3, 5, &mut SearchBudget::new(500_000_000))
            .unwrap()
            .dilation()
    });
    group.bench("cube_into_tn_k7", || {
        hypercube_into_tn(7, 10_000).unwrap().dilation()
    });
    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    group.bench("cube_into_ms_3_2_composed", || {
        hypercube_into_scg(&ms, 10_000).unwrap().dilation()
    });
    group.bench("factorial_mesh_into_tn_k6", || {
        factorial_mesh_into_tn(6, 10_000).unwrap().dilation()
    });
    group.bench("mesh2d_6x20_into_tn_k5", || {
        mesh2d_into_tn(5, &[2, 3], 10_000).unwrap().dilation()
    });
    group.bench("linear_array_into_4star", || {
        linear_array_into_star(4, 1_000, &mut SearchBudget::new(100_000_000))
            .unwrap()
            .dilation()
    });
}
