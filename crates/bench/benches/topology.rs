//! Benchmark for the topology engine: per-node graph construction
//! (`CayleyNetwork::to_graph`, one rank/unrank round trip per edge) vs the
//! engine's table-driven materialization (`Materialized::build`, chunked
//! parallel rank-transition sweeps), plus the cost of a warm cache hit.
//!
//! Output is recorded in `results/bench_topology.txt`.

use scg_bench::bench::Group;
use scg_core::{
    CayleyNetwork, Materialized, StarGraph, SuperCayleyGraph, TopologyCache, DEFAULT_NET_CAP,
};

fn compare(group: &mut Group, name: &str, net: &dyn CayleyNetwork) {
    group.bench(&format!("{name}_per_node"), || {
        net.to_graph(DEFAULT_NET_CAP).unwrap()
    });
    group.bench(&format!("{name}_table_driven"), || {
        Materialized::build(net, DEFAULT_NET_CAP).unwrap()
    });
    let cache = TopologyCache::new();
    cache.materialize(net, DEFAULT_NET_CAP).unwrap();
    group.bench(&format!("{name}_cache_hit"), || {
        cache.materialize(net, DEFAULT_NET_CAP).unwrap()
    });
}

fn main() {
    let mut group = Group::new("topology");
    for k in 7..=9 {
        let star = StarGraph::new(k).unwrap();
        compare(&mut group, &format!("star_k{k}"), &star);
    }
    let ms7 = SuperCayleyGraph::macro_star(3, 2).unwrap(); // k = 7
    compare(&mut group, "ms_3_2_k7", &ms7);
    let ms9 = SuperCayleyGraph::macro_star(4, 2).unwrap(); // k = 9
    compare(&mut group, "ms_4_2_k9", &ms9);
}
