//! Benchmarks for `tab_networks` / routing: algebraic star routing vs
//! exact BFS routing (the ablation DESIGN.md calls out), and emulation
//! routing on super Cayley hosts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};
use scg_core::{bfs_route, scg_route, star_route, StarGraph, SuperCayleyGraph};
use scg_perm::Perm;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    group.bench_function("star_route_algebraic_k9", |b| {
        b.iter_batched(
            || (Perm::random(9, &mut rng), Perm::random(9, &mut rng)),
            |(from, to)| star_route(&from, &to),
            BatchSize::SmallInput,
        );
    });

    let star5 = StarGraph::new(5).unwrap();
    group.bench_function("star_route_bfs_k5", |b| {
        b.iter_batched(
            || (Perm::random(5, &mut rng), Perm::random(5, &mut rng)),
            |(from, to)| bfs_route(&star5, &from, &to, 1_000_000).unwrap(),
            BatchSize::SmallInput,
        );
    });

    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    group.bench_function("scg_route_ms_3_2", |b| {
        b.iter_batched(
            || (Perm::random(7, &mut rng), Perm::random(7, &mut rng)),
            |(from, to)| scg_route(&ms, &from, &to).unwrap(),
            BatchSize::SmallInput,
        );
    });

    let crs = SuperCayleyGraph::complete_rotation_star(4, 3).unwrap();
    group.bench_function("scg_route_crs_4_3", |b| {
        b.iter_batched(
            || (Perm::random(13, &mut rng), Perm::random(13, &mut rng)),
            |(from, to)| scg_route(&crs, &from, &to).unwrap(),
            BatchSize::SmallInput,
        );
    });

    // Schreier-Sims connectivity certification at k = 20.
    group.bench_function("group_order_is20_schreier_sims", |b| {
        let is20 = SuperCayleyGraph::insertion_selection(20).unwrap();
        b.iter(|| {
            use scg_core::CayleyNetwork;
            is20.generates_symmetric_group()
        });
    });

    // Keep the RNG warm so batches differ.
    let _ = rng.gen::<u8>();
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
