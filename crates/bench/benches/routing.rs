//! Benchmarks for `tab_networks` / routing: algebraic star routing vs
//! exact BFS routing (the ablation DESIGN.md calls out), and emulation
//! routing on super Cayley hosts.

use scg_bench::bench::Group;
use scg_core::{bfs_route, scg_route, star_route, StarGraph, SuperCayleyGraph};
use scg_perm::{Perm, XorShift64};

fn main() {
    let mut group = Group::new("routing");
    let mut rng = XorShift64::new(42);

    group.bench_batched(
        "star_route_algebraic_k9",
        || (Perm::random(9, &mut rng), Perm::random(9, &mut rng)),
        |(from, to)| star_route(&from, &to),
    );

    let star5 = StarGraph::new(5).unwrap();
    let mut rng = XorShift64::new(43);
    group.bench_batched(
        "star_route_bfs_k5",
        || (Perm::random(5, &mut rng), Perm::random(5, &mut rng)),
        |(from, to)| bfs_route(&star5, &from, &to, 1_000_000).unwrap(),
    );

    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    let mut rng = XorShift64::new(44);
    group.bench_batched(
        "scg_route_ms_3_2",
        || (Perm::random(7, &mut rng), Perm::random(7, &mut rng)),
        |(from, to)| scg_route(&ms, &from, &to).unwrap(),
    );

    let crs = SuperCayleyGraph::complete_rotation_star(4, 3).unwrap();
    let mut rng = XorShift64::new(45);
    group.bench_batched(
        "scg_route_crs_4_3",
        || (Perm::random(13, &mut rng), Perm::random(13, &mut rng)),
        |(from, to)| scg_route(&crs, &from, &to).unwrap(),
    );

    // Schreier-Sims connectivity certification at k = 20.
    let is20 = SuperCayleyGraph::insertion_selection(20).unwrap();
    group.bench("group_order_is20_schreier_sims", || {
        use scg_core::CayleyNetwork;
        is20.generates_symmetric_group()
    });
}
