//! Benchmarks for `fig1` / `tab_thm4_5`: building and validating all-port
//! emulation schedules (constructive path vs the DFS fallback shapes).

use criterion::{criterion_group, criterion_main, Criterion};
use scg_core::SuperCayleyGraph;
use scg_emu::AllPortSchedule;

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedules");
    for (name, host) in [
        ("ms_4_3_fig1a", SuperCayleyGraph::macro_star(4, 3).unwrap()),
        ("ms_5_3_fig1b", SuperCayleyGraph::macro_star(5, 3).unwrap()),
        ("crs_6_3", SuperCayleyGraph::complete_rotation_star(6, 3).unwrap()),
        ("mis_4_3", SuperCayleyGraph::macro_is(4, 3).unwrap()),
        ("mis_2_2_dfs_fallback", SuperCayleyGraph::macro_is(2, 2).unwrap()),
        ("is_13", SuperCayleyGraph::insertion_selection(13).unwrap()),
    ] {
        group.bench_function(format!("build_{name}"), |b| {
            b.iter(|| AllPortSchedule::build(&host).unwrap());
        });
    }
    let s = AllPortSchedule::build(&SuperCayleyGraph::macro_star(5, 3).unwrap()).unwrap();
    group.bench_function("validate_ms_5_3", |b| {
        b.iter(|| s.validate().unwrap());
    });
    group.bench_function("render_ms_5_3", |b| {
        b.iter(|| s.render());
    });
    group.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
