//! Benchmarks for `fig1` / `tab_thm4_5`: building and validating all-port
//! emulation schedules (constructive path vs the DFS fallback shapes).

use scg_bench::bench::Group;
use scg_core::SuperCayleyGraph;
use scg_emu::AllPortSchedule;

fn main() {
    let mut group = Group::new("schedules");
    for (name, host) in [
        ("ms_4_3_fig1a", SuperCayleyGraph::macro_star(4, 3).unwrap()),
        ("ms_5_3_fig1b", SuperCayleyGraph::macro_star(5, 3).unwrap()),
        (
            "crs_6_3",
            SuperCayleyGraph::complete_rotation_star(6, 3).unwrap(),
        ),
        ("mis_4_3", SuperCayleyGraph::macro_is(4, 3).unwrap()),
        (
            "mis_2_2_dfs_fallback",
            SuperCayleyGraph::macro_is(2, 2).unwrap(),
        ),
        ("is_13", SuperCayleyGraph::insertion_selection(13).unwrap()),
    ] {
        group.bench(&format!("build_{name}"), || {
            AllPortSchedule::build(&host).unwrap()
        });
    }
    let s = AllPortSchedule::build(&SuperCayleyGraph::macro_star(5, 3).unwrap()).unwrap();
    group.bench("validate_ms_5_3", || s.validate().unwrap());
    group.bench("render_ms_5_3", || s.render());
}
