//! Benchmarks for `tab_thm1_3` / `tab_thm6_7`: building the validated
//! star and transposition-network embeddings and computing their metrics.

use scg_bench::bench::Group;
use scg_core::{StarGraph, SuperCayleyGraph, TranspositionNetwork};
use scg_embed::CayleyEmbedding;

fn main() {
    let mut group = Group::new("embeddings");

    let star6 = StarGraph::new(6).unwrap();
    let is6 = SuperCayleyGraph::insertion_selection(6).unwrap();
    group.bench("build_star6_into_is6", || {
        CayleyEmbedding::build(&star6, &is6, 10_000).unwrap()
    });

    let star7 = StarGraph::new(7).unwrap();
    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    group.bench("build_star7_into_ms_3_2", || {
        CayleyEmbedding::build(&star7, &ms, 10_000).unwrap()
    });

    let tn5 = TranspositionNetwork::new(5).unwrap();
    let ms_l2 = SuperCayleyGraph::macro_star(2, 2).unwrap();
    group.bench("build_tn5_into_ms_2_2", || {
        CayleyEmbedding::build(&tn5, &ms_l2, 10_000).unwrap()
    });

    let built = CayleyEmbedding::build(&star7, &ms, 10_000).unwrap();
    group.bench("metrics_star7_into_ms_3_2", || {
        let e = built.embedding();
        (e.dilation(), e.congestion(), e.load())
    });
}
