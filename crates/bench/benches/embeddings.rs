//! Benchmarks for `tab_thm1_3` / `tab_thm6_7`: building the validated
//! star and transposition-network embeddings and computing their metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use scg_core::{StarGraph, SuperCayleyGraph, TranspositionNetwork};
use scg_embed::CayleyEmbedding;

fn bench_embeddings(c: &mut Criterion) {
    let mut group = c.benchmark_group("embeddings");
    group.sample_size(10);

    let star6 = StarGraph::new(6).unwrap();
    let is6 = SuperCayleyGraph::insertion_selection(6).unwrap();
    group.bench_function("build_star6_into_is6", |b| {
        b.iter(|| CayleyEmbedding::build(&star6, &is6, 10_000).unwrap());
    });

    let star7 = StarGraph::new(7).unwrap();
    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    group.bench_function("build_star7_into_ms_3_2", |b| {
        b.iter(|| CayleyEmbedding::build(&star7, &ms, 10_000).unwrap());
    });

    let tn5 = TranspositionNetwork::new(5).unwrap();
    let ms_l2 = SuperCayleyGraph::macro_star(2, 2).unwrap();
    group.bench_function("build_tn5_into_ms_2_2", |b| {
        b.iter(|| CayleyEmbedding::build(&tn5, &ms_l2, 10_000).unwrap());
    });

    let built = CayleyEmbedding::build(&star7, &ms, 10_000).unwrap();
    group.bench_function("metrics_star7_into_ms_3_2", |b| {
        b.iter(|| {
            let e = built.embedding();
            (e.dilation(), e.congestion(), e.load())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_embeddings);
criterion_main!(benches);
