//! Benchmarks for `tab_bag`: solving scrambled ball-arrangement games via
//! the emulation router and via exact BFS.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use scg_bag::BagGame;
use scg_core::SuperCayleyGraph;

fn bench_bag(c: &mut Criterion) {
    let mut group = c.benchmark_group("bag_solver");
    let game = BagGame::new(SuperCayleyGraph::macro_star(3, 2).unwrap());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    group.bench_function("solve_router_ms_3_2", |b| {
        b.iter_batched(
            || game.scramble(30, &mut rng),
            |cfg| game.solve(&cfg).unwrap(),
            BatchSize::SmallInput,
        );
    });

    let small = BagGame::new(SuperCayleyGraph::macro_star(2, 2).unwrap());
    group.bench_function("solve_optimal_bfs_ms_2_2", |b| {
        b.iter_batched(
            || small.scramble(30, &mut rng),
            |cfg| small.solve_optimal(&cfg, 1_000_000).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_bag);
criterion_main!(benches);
