//! Benchmarks for `tab_bag`: solving scrambled ball-arrangement games via
//! the emulation router and via exact BFS.

use scg_bag::BagGame;
use scg_bench::bench::Group;
use scg_core::SuperCayleyGraph;
use scg_perm::XorShift64;

fn main() {
    let mut group = Group::new("bag_solver");
    let game = BagGame::new(SuperCayleyGraph::macro_star(3, 2).unwrap());
    let mut rng = XorShift64::new(7);

    group.bench_batched(
        "solve_router_ms_3_2",
        || game.scramble(30, &mut rng),
        |cfg| game.solve(&cfg).unwrap(),
    );

    let small = BagGame::new(SuperCayleyGraph::macro_star(2, 2).unwrap());
    let mut rng = XorShift64::new(8);
    group.bench_batched(
        "solve_optimal_bfs_ms_2_2",
        || small.scramble(30, &mut rng),
        |cfg| small.solve_optimal(&cfg, 1_000_000).unwrap(),
    );
}
