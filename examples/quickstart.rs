//! Quickstart: build super Cayley networks, inspect their topology, and
//! route packets by star-graph emulation.
//!
//! Run with `cargo run --example quickstart`.

use supercayley::core::{
    apply_path, scg_route, star_distance_between, CayleyNetwork, NetworkReport, StarEmulation,
    SuperCayleyGraph,
};
use supercayley::perm::Perm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's flagship class: the macro-star network MS(l, n) with
    // k = nl + 1 symbols. MS(3,2) has 7! = 5040 nodes of degree 4.
    let ms = SuperCayleyGraph::macro_star(3, 2)?;
    println!("network      : {}", ms.name());
    println!("nodes        : {}", ms.num_nodes());
    println!("degree       : {}", ms.node_degree());
    println!(
        "generators   : {:?}",
        ms.generators()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    // Measured topological properties (diameter, mean distance, Moore bound).
    let report = NetworkReport::measure(&ms, 10_000)?;
    println!(
        "diameter     : {} (Moore bound {})",
        report.diameter, report.moore_bound
    );
    println!("mean distance: {:.3}", report.mean_distance);

    // Routing: emulate the optimal star-graph route (Theorem 1: each star
    // link costs at most 3 host links).
    let from: Perm = "7 6 5 4 3 2 1".parse()?;
    let to = Perm::identity(7);
    let path = scg_route(&ms, &from, &to)?;
    println!("\nroute {} -> {}:", from, to);
    println!(
        "  {} host hops for star distance {} (slowdown bound {})",
        path.len(),
        star_distance_between(&from, &to),
        StarEmulation::new(&ms)?.star_dilation(),
    );
    print!("  path:");
    for g in &path {
        print!(" {g}");
    }
    println!();
    assert_eq!(apply_path(&from, &path)?, to);
    println!("  endpoint verified.");

    // The same API covers all ten classes.
    for net in [
        SuperCayleyGraph::rotation_star(3, 2)?,
        SuperCayleyGraph::complete_rotation_star(3, 2)?,
        SuperCayleyGraph::insertion_selection(7)?,
        SuperCayleyGraph::macro_is(3, 2)?,
        SuperCayleyGraph::macro_rotator(3, 2)?,
    ] {
        println!(
            "{:<18} degree {:<2} ({})",
            net.name(),
            net.node_degree(),
            if net.is_inverse_closed() {
                "undirected"
            } else {
                "directed"
            }
        );
    }
    Ok(())
}
