//! Algebraic connectivity certification: Schreier–Sims stabilizer chains
//! prove that every super Cayley class is connected at sizes no graph
//! traversal could ever touch, and expose the group structure behind the
//! ball-arrangement game.
//!
//! Run with `cargo run --release --example connectivity`.

use supercayley::core::{CayleyNetwork, SuperCayleyGraph};
use supercayley::perm::{factorial, Perm, StabilizerChain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // IS(20): 20! ≈ 2.4 × 10^18 nodes. BFS is hopeless; the stabilizer
    // chain answers instantly.
    let giant = SuperCayleyGraph::insertion_selection(20)?;
    println!(
        "{}: {} nodes, degree {} — connected: {}",
        giant.name(),
        giant.num_nodes(),
        giant.node_degree(),
        giant.generates_symmetric_group()
    );

    // The chain also answers membership: is a given rearrangement reachable
    // using only *super* moves (box swaps)? Only the block-permuting coset.
    let ms = SuperCayleyGraph::macro_star(3, 2)?;
    let super_only: Vec<Perm> = ms
        .generators()
        .iter()
        .filter(|g| !g.is_nucleus())
        .map(|g| g.as_perm(7))
        .collect::<Result<_, _>>()?;
    let chain = StabilizerChain::new(&super_only);
    println!(
        "\n{}: super moves alone generate a subgroup of order {} (of {} = 7!)",
        ms.name(),
        chain.order(),
        factorial(7)
    );
    let swap_boxes: Perm = "1 4 5 2 3 6 7".parse()?; // boxes 1 and 2 exchanged
    let nucleus_move: Perm = "2 1 3 4 5 6 7".parse()?; // needs a nucleus move
    println!(
        "  reach '1 4 5 2 3 6 7' with box moves only? {}",
        chain.contains(&swap_boxes)
    );
    println!(
        "  reach '2 1 3 4 5 6 7' with box moves only? {}",
        chain.contains(&nucleus_move)
    );

    // Generator orders: every generator's order divides the group order
    // (Lagrange), and rotations have order l.
    println!("\ngenerator orders in {}:", ms.name());
    for g in ms.generators() {
        println!("  {g:<3} order {}", g.as_perm(7)?.order());
    }
    Ok(())
}
