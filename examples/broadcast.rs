//! Multinode broadcast and total exchange (Corollaries 2-3): the same
//! algorithms run on a star graph and on super Cayley hosts of equal size,
//! exposing the degree-versus-time trade-off the paper quantifies.
//!
//! Run with `cargo run --release --example broadcast`.

use supercayley::comm::{mnb_all_port, mnb_sdc, te_all_port, te_sdc};
use supercayley::core::{CayleyNetwork, StarGraph, SuperCayleyGraph};
use supercayley::graph::SearchBudget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CAP: u64 = 10_000;
    println!("N = 120 networks, all-port multinode broadcast:");
    let nets: Vec<Box<dyn CayleyNetwork>> = vec![
        Box::new(StarGraph::new(5)?),
        Box::new(SuperCayleyGraph::macro_star(2, 2)?),
        Box::new(SuperCayleyGraph::insertion_selection(5)?),
        Box::new(SuperCayleyGraph::macro_is(2, 2)?),
    ];
    for net in &nets {
        let r = mnb_all_port(net.as_ref(), CAP)?;
        println!(
            "  {:<10} degree {:<2}: {:>3} steps (lower bound {:>3}, ratio {:.2})",
            r.network,
            r.degree,
            r.steps,
            r.lower_bound,
            r.optimality_ratio()
        );
    }

    println!("\nSDC multinode broadcast (strictly optimal N-1 via Hamiltonian word):");
    let r = mnb_sdc(
        &StarGraph::new(5)?,
        CAP,
        &mut SearchBudget::new(500_000_000),
    )?;
    println!(
        "  {:<10}: {} steps = N-1 (Mišić–Jovanović's k!-1)",
        r.network, r.steps
    );

    println!("\nTotal exchange:");
    for net in &nets {
        let sdc = te_sdc(net.as_ref(), CAP)?;
        let ap = te_all_port(net.as_ref(), CAP, 1_000_000)?;
        println!(
            "  {:<10} degree {:<2}: SDC optimum {:>5} steps; all-port {:>4} steps (bound {:>4})",
            sdc.network, sdc.degree, sdc.steps, ap.steps, ap.lower_bound
        );
    }
    println!("\nLower-degree hosts trade time for hardware exactly as Corollaries 2-3 state.");
    Ok(())
}
