//! Fault tolerance: audit connectivity, fail nodes and links, and route
//! around them — the connectivity-equals-degree property in action.
//!
//! Run with `cargo run --release --example fault_routing`.

use supercayley::core::{
    materialize, scg_route, scg_route_faulty, CayleyNetwork, SuperCayleyGraph, SMALL_NET_CAP,
};
use supercayley::graph::{vertex_connectivity, FaultSet, SurvivorView};
use supercayley::perm::{Perm, XorShift64};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The macro-star network MS(2,2): 5! = 120 nodes, 3 distinct neighbors
    // per node — so connectivity 3, and any 2 failures are survivable.
    let ms = SuperCayleyGraph::macro_star(2, 2)?;
    let mat = materialize(&ms, SMALL_NET_CAP)?;
    let kappa = vertex_connectivity(mat.graph());
    println!("network         : {}", ms.name());
    println!("connectivity    : {kappa} (max-flow audit)");

    // The fault-free emulation route between two nodes.
    let from: Perm = "5 4 3 2 1".parse()?;
    let to = Perm::identity(5);
    let plan = scg_route(&ms, &from, &to)?;
    println!("fault-free route: {} hops", plan.len());

    // Fail the first link of that route, plus a random node elsewhere
    // (degree − 1 = 2 faults total — the worst case the theory covers).
    let src = mat.node_id(&from)?;
    let first_gen = ms.generators().iter().position(|g| *g == plan[0]).unwrap();
    let first_hop = mat.neighbor_id(src, first_gen);
    let mut faults = FaultSet::new();
    faults.fail_link(src, first_hop);
    let mut rng = XorShift64::new(99);
    loop {
        let n = rng.gen_range(mat.num_nodes()) as u32;
        if n != src && n != mat.node_id(&to)? {
            faults.fail_node(n);
            break;
        }
    }
    println!(
        "injected faults : link {src} → {first_hop}, node {:?}",
        faults.failed_nodes()
    );

    // The survivors are still strongly connected...
    let view = SurvivorView::new(mat.graph(), &faults);
    println!(
        "survivors       : strongly connected = {}",
        view.is_strongly_connected()
    );

    // ...and the fault-aware router detours around the dead link.
    let routed = scg_route_faulty(&ms, &mat, &from, &to, &faults)?;
    println!(
        "fault-aware     : {} hops, {} detour(s), fallback = {}",
        routed.len(),
        routed.detours,
        routed.fallback_used
    );
    Ok(())
}
