//! An atlas of the paper's §5 embeddings: stars, transposition networks,
//! trees, hypercubes and meshes into super Cayley hosts, with all four
//! quality metrics measured from the validated embedding objects.
//!
//! Run with `cargo run --release --example embedding_atlas`.

use supercayley::core::{CayleyNetwork, StarGraph, SuperCayleyGraph, TranspositionNetwork};
use supercayley::embed::{
    factorial_mesh_into_scg, hypercube_into_scg, tree_into_scg, CayleyEmbedding, Embedding,
};
use supercayley::graph::SearchBudget;

fn show(guest: &str, host: &str, e: &Embedding) {
    println!(
        "{guest:<22} -> {host:<18} dilation {:<2} congestion {:<3} load {} expansion {:.1}",
        e.dilation(),
        e.congestion(),
        e.load(),
        e.expansion()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CAP: u64 = 50_000;
    println!("== Cayley guests (Theorems 1-3, 6-7) ==");
    let star7 = StarGraph::new(7)?;
    for host in [
        SuperCayleyGraph::macro_star(3, 2)?,
        SuperCayleyGraph::complete_rotation_star(3, 2)?,
        SuperCayleyGraph::insertion_selection(7)?,
        SuperCayleyGraph::macro_is(3, 2)?,
    ] {
        let ce = CayleyEmbedding::build(&star7, &host, CAP)?;
        show("7-star", &host.name(), ce.embedding());
    }
    let tn7 = TranspositionNetwork::new(7)?;
    for host in [
        SuperCayleyGraph::macro_star(2, 3)?, // l = 2: dilation 5
        SuperCayleyGraph::macro_star(3, 2)?, // l >= 3: dilation 7
    ] {
        let ce = CayleyEmbedding::build(&tn7, &host, CAP)?;
        show("7-TN", &host.name(), ce.embedding());
    }

    println!("\n== Trees (Corollary 4) ==");
    for host in [
        SuperCayleyGraph::insertion_selection(5)?,
        SuperCayleyGraph::macro_star(2, 2)?,
        SuperCayleyGraph::macro_is(2, 2)?,
    ] {
        let e = tree_into_scg(4, &host, &mut SearchBudget::new(1_000_000_000))?;
        show("binary tree h=4", &host.name(), &e);
    }

    println!("\n== Hypercubes (Corollary 5) ==");
    for host in [
        SuperCayleyGraph::macro_star(3, 2)?,
        SuperCayleyGraph::insertion_selection(7)?,
    ] {
        let e = hypercube_into_scg(&host, CAP)?;
        show("3-cube", &host.name(), &e);
    }

    println!("\n== Meshes (Corollary 7) ==");
    for host in [
        SuperCayleyGraph::macro_star(2, 2)?,
        SuperCayleyGraph::insertion_selection(5)?,
    ] {
        let e = factorial_mesh_into_scg(&host, CAP)?;
        show("2x3x4x5 mesh", &host.name(), &e);
    }
    Ok(())
}
