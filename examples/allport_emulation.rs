//! All-port star emulation (Theorem 4 / Figure 1) for any macro-star or
//! complete-rotation-star shape: prints the conflict-free schedule grid, its
//! makespan vs the `max(2n, l+1)` bound, and link utilization.
//!
//! Run with `cargo run --example allport_emulation -- [l] [n] [ms|crs|mis|cris|is]`
//! (defaults: the paper's Figure 1b, MS(5,3)).

use supercayley::core::SuperCayleyGraph;
use supercayley::emu::AllPortSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = args.get(1).map_or(Ok(5), |s| s.parse())?;
    let n: usize = args.get(2).map_or(Ok(3), |s| s.parse())?;
    let class = args.get(3).map_or("ms", String::as_str);
    let host = match class {
        "ms" => SuperCayleyGraph::macro_star(l, n)?,
        "crs" => SuperCayleyGraph::complete_rotation_star(l, n)?,
        "mis" => SuperCayleyGraph::macro_is(l, n)?,
        "cris" => SuperCayleyGraph::complete_rotation_is(l, n)?,
        "is" => SuperCayleyGraph::insertion_selection(l * n + 1)?,
        other => return Err(format!("unknown class {other}").into()),
    };
    let schedule = AllPortSchedule::build(&host)?;
    schedule.validate()?;
    print!("{}", schedule.render());
    println!(
        "\nmakespan {} — Theorem 4/5 bound {:?}; {} hops over {} links; \
         every dimension's packets verified to land on the T_j neighbor.",
        schedule.makespan(),
        schedule.theoretical_bound(),
        schedule.total_hops(),
        schedule.links().len(),
    );
    Ok(())
}
