//! The ball-arrangement game, played end to end: scramble the boxes, watch
//! the solver route the configuration back to the sorted state, and see the
//! game ↔ network correspondence of §2 in action.
//!
//! Run with `cargo run --example ball_game`.

use supercayley::bag::{BagConfig, BagGame, MoveKind};
use supercayley::core::{CayleyNetwork, SuperCayleyGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Macro-star rules: 3 boxes of 2 balls + 1 outside ball (7 balls).
    let game = BagGame::new(SuperCayleyGraph::macro_star(3, 2)?);
    let n = game.network().box_size();
    println!(
        "Ball-arrangement game with {} balls, rules of {}:",
        game.num_balls(),
        game.network().name()
    );
    for (g, kind) in game.moves() {
        println!("  move {g:<3} — {kind}");
    }

    let mut rng = supercayley::perm::XorShift64::new(1999);
    let scrambled = game.scramble(40, &mut rng);
    println!("\nscrambled : {}", scrambled.render(n));

    // Solve via the network router (Theorem 1 emulation)…
    let solution = game.solve(&scrambled)?;
    println!("router solution: {} moves", solution.len());
    let mut cur = scrambled;
    for (i, mv) in solution.iter().enumerate() {
        cur = game.apply(&cur, *mv)?;
        println!("  {:>2}. {:<3} -> {}", i + 1, mv.to_string(), cur.render(n));
    }
    assert!(cur.is_solved());

    // …and optimally via BFS: the minimum number of moves IS the graph
    // distance in the corresponding super Cayley network.
    let optimal = game.solve_optimal(&scrambled, 1_000_000)?;
    println!(
        "\noptimal solution: {} moves (graph distance)",
        optimal.len()
    );
    assert!(game.replay(&scrambled, &optimal)?.is_solved());

    // The coset-level view: a configuration can be color-sorted (right
    // balls in right boxes) without being fully solved.
    let almost = BagConfig::from_symbols(&[1, 3, 2, 4, 5, 6, 7])?;
    println!(
        "\n{} — color-sorted: {}, solved: {}",
        almost.render(n),
        almost.is_color_sorted(n),
        almost.is_solved()
    );
    let classify = |k: MoveKind| match k {
        MoveKind::RearrangeLeftmost => "nucleus",
        MoveKind::RearrangeBoxes => "super",
    };
    let (g0, k0) = game.moves()[0];
    println!("(first legal move {g0} is a {} move)", classify(k0));
    Ok(())
}
