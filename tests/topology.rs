//! Acceptance tests for the topology engine: for every one of the ten
//! network classes, the cached table-driven materialization must equal the
//! direct per-node construction, and repeated cache lookups must share one
//! graph allocation.

use std::sync::Arc;

use supercayley::core::{CayleyNetwork, ScgClass, SuperCayleyGraph, TopologyCache, SMALL_NET_CAP};

fn small_instance(class: ScgClass) -> SuperCayleyGraph {
    // k = 5 for every class: (l,n) = (2,2), except IS which is nucleus-only.
    if class == ScgClass::InsertionSelection {
        SuperCayleyGraph::insertion_selection(5).unwrap()
    } else {
        SuperCayleyGraph::new(class, 2, 2).unwrap()
    }
}

/// The engine's rank-table construction agrees edge-for-edge with the
/// direct per-node `to_graph` reference on all ten classes.
#[test]
fn engine_matches_direct_construction_on_all_classes() {
    let cache = TopologyCache::new();
    for class in ScgClass::ALL {
        let net = small_instance(class);
        let direct = net.to_graph(SMALL_NET_CAP).unwrap();
        let mat = cache.materialize(&net, SMALL_NET_CAP).unwrap();
        assert_eq!(*mat.graph().as_ref(), direct, "{}", net.name());
        // The transition tables agree with the CSR rows once both are
        // viewed as neighbor sets.
        for u in 0..direct.num_nodes() as u32 {
            let mut from_tables: Vec<u32> = (0..mat.node_degree())
                .map(|g| mat.neighbor_id(u, g))
                .collect();
            from_tables.sort_unstable();
            assert_eq!(from_tables.as_slice(), direct.out_neighbors(u));
        }
    }
}

/// Two lookups of the same network return the same `Arc` — the whole point
/// of the shared cache: comm, embed, emu, and reports all see one graph.
#[test]
fn cache_shares_one_arc_per_network() {
    let cache = TopologyCache::new();
    for class in ScgClass::ALL {
        let net = small_instance(class);
        let a = cache.materialize(&net, SMALL_NET_CAP).unwrap();
        let b = cache.materialize(&net, SMALL_NET_CAP).unwrap();
        assert!(
            Arc::ptr_eq(a.graph(), b.graph()),
            "{} graph not shared",
            net.name()
        );
        assert!(Arc::ptr_eq(a.tables(), b.tables()), "{}", net.name());
    }
    assert_eq!(cache.len(), ScgClass::ALL.len());
}

/// The boxed-trait path (how `scg-comm` calls the engine) hits the same
/// cache entries as the concrete-type path.
#[test]
fn dyn_and_concrete_lookups_share_entries() {
    let cache = TopologyCache::new();
    let net = small_instance(ScgClass::MacroStar);
    let boxed: Box<dyn CayleyNetwork> = Box::new(small_instance(ScgClass::MacroStar));
    let a = cache.materialize(&net, SMALL_NET_CAP).unwrap();
    let b = cache.materialize(boxed.as_ref(), SMALL_NET_CAP).unwrap();
    assert!(Arc::ptr_eq(a.graph(), b.graph()));
    assert_eq!(cache.len(), 1);
}
