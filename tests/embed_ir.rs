//! The arena-backed embedding IR across crate boundaries: compat-view
//! agreement, composition bounds on all ten Table II classes, and
//! fault-aware re-embedding.

use std::collections::HashSet;

use supercayley::core::{
    materialize, CayleyNetwork, SuperCayleyGraph, TranspositionNetwork, SMALL_NET_CAP,
};
use supercayley::embed::{
    factorial_mesh_into_tn, hypercube_into_scg, hypercube_into_tn, reembed_scg, CayleyEmbedding,
    EmbedError,
};
use supercayley::graph::{FaultSet, NodeId, SurvivorView};

/// All ten classes of Table II at k = nl + 1 = 5.
fn ten_classes() -> Vec<SuperCayleyGraph> {
    vec![
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
        SuperCayleyGraph::rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
        SuperCayleyGraph::macro_is(2, 2).unwrap(),
        SuperCayleyGraph::rotation_is(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
    ]
}

#[test]
fn compose_dilation_bounded_by_product_on_all_ten_classes() {
    for net in ten_classes() {
        let k = net.degree_k();
        let tn = TranspositionNetwork::new(k).unwrap();
        let outer = CayleyEmbedding::build(&tn, &net, SMALL_NET_CAP).unwrap();
        let outer_dil = outer.embedding().dilation();

        let cube = hypercube_into_tn(k, SMALL_NET_CAP).unwrap();
        let composed = cube.compose(outer.embedding()).unwrap();
        assert!(
            composed.dilation() <= cube.dilation() * outer_dil,
            "{}: cube dilation {} > {} * {}",
            net.name(),
            composed.dilation(),
            cube.dilation(),
            outer_dil
        );
        assert_eq!(composed.load(), 1, "{}", net.name());

        let mesh = factorial_mesh_into_tn(k, SMALL_NET_CAP).unwrap();
        let composed = mesh.compose(outer.embedding()).unwrap();
        assert!(
            composed.dilation() <= mesh.dilation() * outer_dil,
            "{}: mesh dilation {} > {} * {}",
            net.name(),
            composed.dilation(),
            mesh.dilation(),
            outer_dil
        );
    }
}

#[test]
fn compat_view_and_ir_expose_the_same_embedding() {
    let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let e = hypercube_into_scg(&net, SMALL_NET_CAP).unwrap();
    let ir = e.ir();
    assert_eq!(e.node_map(), ir.node_map());
    assert_eq!(e.dilation(), ir.dilation());
    assert_eq!(e.load(), ir.load());
    assert_eq!(e.congestion(), ir.congestion());
    for edge in 0..ir.num_program_edges() {
        // The compat view's paths are slices into the shared arena.
        assert_eq!(e.edge_path(edge), ir.hyperpath_at(edge));
        let seg = ir.hyperpath_at(edge);
        assert!(seg.len() >= 2 || seg.len() == 1);
    }
    // The one-pass auditor agrees with the individual metrics.
    let audit = ir.audit();
    assert_eq!(audit.load, ir.load());
    assert_eq!(audit.dilation, ir.dilation());
    assert_eq!(audit.congestion, ir.congestion());
    assert!((audit.expansion - ir.expansion()).abs() < 1e-12);
    assert!((audit.mean_path_length - ir.mean_path_length()).abs() < 1e-12);
}

#[test]
fn reembed_survives_single_faults_on_all_ten_classes() {
    for net in ten_classes() {
        let ir = hypercube_into_scg(&net, SMALL_NET_CAP).unwrap().into_ir();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let mapped: HashSet<NodeId> = ir.node_map().iter().copied().collect();

        // A victim in the interior of some hyperpath forces a re-route.
        let victim = (0..ir.num_program_edges())
            .flat_map(|edge| {
                let p = ir.hyperpath_at(edge);
                p[1..p.len() - 1].to_vec()
            })
            .find(|v| !mapped.contains(v))
            .expect("cube hyperpaths have unmapped interiors");
        let mut faults = FaultSet::new();
        faults.fail_node(victim);
        let r = reembed_scg(&ir, &net, &mat, &faults).unwrap();
        assert_eq!(r.node_map(), ir.node_map(), "{}", net.name());
        assert_eq!(r.load(), ir.load(), "{}", net.name());
        let view = SurvivorView::new(mat.graph(), &faults);
        for edge in 0..r.num_program_edges() {
            assert!(
                view.path_is_live(r.hyperpath_at(edge)),
                "{}: edge {edge} still crosses the fault",
                net.name()
            );
        }

        // A fault on a mapped host node is refused structurally.
        let carried = ir.node_map()[0];
        let mut faults = FaultSet::new();
        faults.fail_node(carried);
        match reembed_scg(&ir, &net, &mat, &faults) {
            Err(EmbedError::MappedNodeFailed {
                program_node,
                host_node,
            }) => {
                assert_eq!(host_node, carried, "{}", net.name());
                assert_eq!(ir.node_map()[program_node], carried, "{}", net.name());
            }
            other => panic!("{}: expected MappedNodeFailed, got {other:?}", net.name()),
        }
    }
}

#[test]
fn reembed_rejects_mismatched_host() {
    let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let is5 = SuperCayleyGraph::insertion_selection(5).unwrap();
    let ir = hypercube_into_scg(&ms, SMALL_NET_CAP).unwrap().into_ir();
    let other_mat = materialize(&is5, SMALL_NET_CAP).unwrap();
    let r = reembed_scg(&ir, &is5, &other_mat, &FaultSet::new());
    assert!(
        matches!(r, Err(EmbedError::Unsupported { .. })),
        "foreign materialization must be refused"
    );
}
