//! Error types across the workspace: every public error variant renders a
//! meaningful message and carries its source chain (C-GOOD-ERR).

use std::error::Error as _;

use supercayley::bag::BagGame;
use supercayley::comm::CommError;
use supercayley::core::{CoreError, SuperCayleyGraph};
use supercayley::embed::EmbedError;
use supercayley::emu::{AllPortSchedule, EmuError};
use supercayley::graph::{GraphError, SearchBudget};
use supercayley::perm::{Perm, PermError};

#[test]
fn perm_errors_render() {
    let e = Perm::from_symbols(&[1, 1]).unwrap_err();
    assert!(matches!(e, PermError::NotAPermutation { symbol: 1 }));
    assert!(e.to_string().contains("not a permutation"));
    let e = Perm::from_rank(3, 99).unwrap_err();
    assert!(e.to_string().contains("99"));
    let e = Perm::from_symbols(&[]).unwrap_err();
    assert!(e.to_string().contains("degree"));
    let e = Perm::identity(4).swapped(0, 2).unwrap_err();
    assert!(e.to_string().contains("position 0"));
}

#[test]
fn packed_degree_rejection_is_typed_and_pinned() {
    // The packed kernel refuses k > 16 with a typed error, never a panic
    // or a silent truncation; the routing layer falls back to the byte
    // array walk instead of ever seeing this error.
    let e = supercayley::perm::PackedPerm::pack(&Perm::identity(17)).unwrap_err();
    assert!(matches!(
        e,
        PermError::PackedDegreeOutOfRange { degree: 17 }
    ));
    assert_eq!(
        e.to_string(),
        "degree 17 exceeds the packed-kernel limit 16"
    );
}

#[test]
fn core_errors_render_and_chain() {
    let e = SuperCayleyGraph::macro_star(1, 2).unwrap_err();
    assert!(e.to_string().contains("l=1"));
    let bad = supercayley::core::Generator::transposition(9)
        .apply(&Perm::identity(4))
        .unwrap_err();
    let wrapped = CoreError::from(bad);
    assert!(wrapped.to_string().contains("permutation error"));
    assert!(wrapped.source().is_some(), "source chain preserved");
    let ms = SuperCayleyGraph::macro_star(4, 3).unwrap(); // 13! nodes
    let e = supercayley::core::NetworkReport::measure(&ms, 10).unwrap_err();
    assert!(e.to_string().contains("exceeds"));
}

#[test]
fn graph_errors_render() {
    let g = supercayley::graph::DenseGraph::from_edges(2, [(0, 9)]).unwrap_err();
    assert!(matches!(g, GraphError::NodeOutOfRange { node: 0 | 9, .. }));
    assert!(g.to_string().contains("out of range"));
    assert_eq!(
        GraphError::BudgetExhausted.to_string(),
        "search budget exhausted"
    );
    assert!(GraphError::NotATree.to_string().contains("tree"));
}

#[test]
fn embed_errors_render_and_chain() {
    let tree = supercayley::graph::complete_binary_tree(5);
    let host = supercayley::graph::complete_binary_tree(2);
    let e = supercayley::graph::embed_tree(&tree, &host, 0, 0, &mut SearchBudget::new(10));
    // Tree larger than host: embeds nowhere → Ok(None), not an error.
    assert!(e.unwrap().is_none());
    let wrapped = EmbedError::from(GraphError::BudgetExhausted);
    assert!(wrapped.source().is_some());
    assert!(wrapped.to_string().contains("graph error"));
    let inconclusive = EmbedError::SearchInconclusive;
    assert!(inconclusive.to_string().contains("budget"));
}

#[test]
fn oversized_embed_hosts_are_refused_structurally() {
    // The materialization cap is checked before any search or host build,
    // and the refusal carries the numbers, not a stringly-typed message.
    let e = supercayley::embed::linear_array_into_star(9, 1_000, &mut SearchBudget::new(10))
        .unwrap_err();
    assert!(matches!(
        e,
        EmbedError::HostTooLarge {
            guest: "linear-array",
            k: 9,
            num_nodes: 362_880,
            cap: 1_000,
        }
    ));
    assert_eq!(
        e.to_string(),
        "linear-array embedding needs the 9-symbol host materialized (362880 nodes) \
         but the cap is 1000 nodes"
    );

    // tree_into_star materializes under DEFAULT_NET_CAP (10^6): 10! exceeds it.
    let e = supercayley::embed::tree_into_star(2, 10, &mut SearchBudget::new(10)).unwrap_err();
    assert!(matches!(
        e,
        EmbedError::HostTooLarge {
            guest: "tree",
            k: 10,
            num_nodes: 3_628_800,
            ..
        }
    ));
    assert_eq!(
        e.to_string(),
        "tree embedding needs the 10-symbol host materialized (3628800 nodes) \
         but the cap is 1000000 nodes"
    );
}

#[test]
fn emu_errors_render() {
    let e = AllPortSchedule::paper_form(&SuperCayleyGraph::macro_star(6, 3).unwrap()).unwrap_err();
    let EmuError::InvalidSchedule { reason } = &e else {
        panic!("expected InvalidSchedule");
    };
    assert!(reason.contains("l=6"));
    assert!(e.to_string().contains("invalid schedule"));
}

#[test]
fn comm_errors_render_and_chain() {
    // TE on a network too large for the cap.
    let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
    let e = supercayley::comm::te_sdc(&ms, 10).unwrap_err();
    assert!(matches!(e, CommError::Core(_)));
    assert!(e.source().is_some());
    // Relay verification rejects a bogus witness.
    let star = supercayley::core::StarGraph::new(4).unwrap();
    let bogus: Vec<u32> = (0..24).rev().collect(); // doesn't start at 0
    let e = supercayley::comm::verify_sdc_relay(&star, &bogus).unwrap_err();
    assert!(e.to_string().contains("identity"));
}

#[test]
fn bag_solver_propagates_caps() {
    let game = BagGame::new(SuperCayleyGraph::macro_star(2, 2).unwrap());
    let mut rng = supercayley::perm::XorShift64::new(1);
    let c = game.scramble(10, &mut rng);
    let e = game.solve_optimal(&c, 1).unwrap_err();
    assert!(matches!(e, CoreError::TooLarge { .. }) || matches!(e, CoreError::NoRoute));
}
