//! Cross-crate randomized tests: random inputs flowing through the whole
//! pipeline (perm → core → embed/emu/comm). Driven by the vendored
//! deterministic PRNG (the workspace builds offline, so `proptest` is not
//! available).

use supercayley::core::{
    apply_path, materialize, scg_route, CayleyNetwork, Generator, StarEmulation, SuperCayleyGraph,
    SMALL_NET_CAP,
};
use supercayley::emu::{AllPortSchedule, NextHop, Packet, PortModel, Router, SyncSim, TableRouter};
use supercayley::perm::{factorial, Perm, XorShift64};

fn host_for(pick: u8) -> SuperCayleyGraph {
    match pick % 6 {
        0 => SuperCayleyGraph::macro_star(3, 2).unwrap(),
        1 => SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
        2 => SuperCayleyGraph::rotation_star(3, 2).unwrap(),
        3 => SuperCayleyGraph::insertion_selection(7).unwrap(),
        4 => SuperCayleyGraph::macro_is(3, 2).unwrap(),
        _ => SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
    }
}

/// Routing works between arbitrary node pairs on every emulation-capable
/// host, stays within the dilation bound, and uses only listed links.
#[test]
fn routing_pipeline() {
    let mut rng = XorShift64::new(61);
    for pick in 0u8..6 {
        let host = host_for(pick);
        let emu = StarEmulation::new(&host).unwrap();
        for _ in 0..8 {
            let from = Perm::from_rank(7, rng.gen_range_u64(factorial(7))).unwrap();
            let to = Perm::from_rank(7, rng.gen_range_u64(factorial(7))).unwrap();
            let path = scg_route(&host, &from, &to).unwrap();
            assert_eq!(apply_path(&from, &path).unwrap(), to);
            for g in &path {
                assert!(
                    host.generators().contains(g),
                    "{} not in {}",
                    g,
                    host.name()
                );
            }
            let star_d = supercayley::core::star_distance_between(&from, &to) as usize;
            assert!(path.len() <= emu.star_dilation() * star_d);
        }
    }
}

/// The all-port schedule emulates EVERY dimension correctly from an
/// arbitrary start node (walking hops in time order).
#[test]
fn schedule_correct_from_any_node() {
    let mut rng = XorShift64::new(62);
    for pick in 0u8..6 {
        let host = host_for(pick);
        if matches!(
            host.class(),
            supercayley::core::ScgClass::RotationStar | supercayley::core::ScgClass::RotationIs
        ) {
            // No all-port theorem for RS/RIS; covered by build-level tests.
            continue;
        }
        let schedule = AllPortSchedule::build(&host).unwrap();
        for _ in 0..4 {
            let u = Perm::from_rank(7, rng.gen_range_u64(factorial(7))).unwrap();
            for dim in schedule.dims() {
                let mut hops = dim.hops.to_vec();
                hops.sort_by_key(|h| h.time);
                let mut cur = u;
                for h in &hops {
                    cur = schedule.links()[h.link].apply(&cur).unwrap();
                }
                let direct = Generator::transposition(dim.dimension).apply(&u).unwrap();
                assert_eq!(cur, direct, "{} dim {}", host.name(), dim.dimension);
            }
        }
    }
}

/// Simulated packets between random pairs arrive in exactly the
/// BFS-distance number of steps when alone in the network.
#[test]
fn lone_packet_takes_shortest_path() {
    let mut rng = XorShift64::new(63);
    for pick in 0u8..3 {
        let host = match pick {
            0 => SuperCayleyGraph::macro_star(2, 2).unwrap(),
            1 => SuperCayleyGraph::insertion_selection(5).unwrap(),
            _ => SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
        };
        let mat = materialize(&host, SMALL_NET_CAP).unwrap();
        let graph = mat.graph();
        let router = TableRouter::new(graph).unwrap();
        for _ in 0..16 {
            let (src, dst) = (rng.gen_range(120) as u32, rng.gen_range(120) as u32);
            let mut sim = SyncSim::new(graph, PortModel::AllPort);
            sim.inject(
                src,
                Packet {
                    src,
                    dst,
                    payload: 0,
                },
                &router,
            )
            .unwrap();
            let stats = sim.run(&router, 10_000).unwrap();
            let d = u64::from(graph.bfs_distances(src)[dst as usize]);
            assert_eq!(stats.steps, d);
            // Router is consistent with adjacency.
            if src != dst {
                let NextHop::Forward(slot) = router.next_hop(
                    src,
                    &Packet {
                        src,
                        dst,
                        payload: 0,
                    },
                ) else {
                    panic!("distinct connected pair must forward");
                };
                assert!(slot < graph.out_degree(src));
            }
        }
    }
}

/// Embedding-by-label round trip: the path of every guest edge in the
/// star→MS embedding is exactly the Theorem-1 expansion applied to the
/// source label.
#[test]
fn embedding_paths_match_expansions() {
    let star = supercayley::core::StarGraph::new(5).unwrap();
    let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let ce = supercayley::embed::CayleyEmbedding::build(&star, &host, SMALL_NET_CAP).unwrap();
    let emb = ce.embedding();
    let edges: Vec<_> = emb.guest().edges().collect();
    let mut rng = XorShift64::new(64);
    for _ in 0..32 {
        let e_idx = rng.gen_range(edges.len());
        let (u, v) = edges[e_idx];
        let path = emb.edge_path(e_idx);
        assert_eq!(path[0], emb.node_map()[u as usize]);
        assert_eq!(*path.last().unwrap(), emb.node_map()[v as usize]);
        assert!(path.len() <= 4); // dilation 3
    }
}
