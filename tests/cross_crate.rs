//! Cross-crate property tests: random inputs flowing through the whole
//! pipeline (perm → core → embed/emu/comm).

use proptest::prelude::*;
use supercayley::core::{
    apply_path, scg_route, CayleyNetwork, Generator, StarEmulation, SuperCayleyGraph,
};
use supercayley::emu::{AllPortSchedule, Packet, PortModel, Router, SyncSim, TableRouter};
use supercayley::perm::{factorial, Perm};

fn host_for(pick: u8) -> SuperCayleyGraph {
    match pick % 6 {
        0 => SuperCayleyGraph::macro_star(3, 2).unwrap(),
        1 => SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
        2 => SuperCayleyGraph::rotation_star(3, 2).unwrap(),
        3 => SuperCayleyGraph::insertion_selection(7).unwrap(),
        4 => SuperCayleyGraph::macro_is(3, 2).unwrap(),
        _ => SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing works between arbitrary node pairs on every emulation-capable
    /// host, stays within the dilation bound, and uses only listed links.
    #[test]
    fn routing_pipeline(pick in 0u8..6, a in 0u64..5040, b in 0u64..5040) {
        let host = host_for(pick);
        let from = Perm::from_rank(7, a % factorial(7)).unwrap();
        let to = Perm::from_rank(7, b % factorial(7)).unwrap();
        let path = scg_route(&host, &from, &to).unwrap();
        prop_assert_eq!(apply_path(&from, &path).unwrap(), to);
        for g in &path {
            prop_assert!(host.generators().contains(g), "{} not in {}", g, host.name());
        }
        let emu = StarEmulation::new(&host).unwrap();
        let star_d = supercayley::core::star_distance_between(&from, &to) as usize;
        prop_assert!(path.len() <= emu.star_dilation() * star_d);
    }

    /// The all-port schedule emulates EVERY dimension correctly from an
    /// arbitrary start node (walking hops in time order).
    #[test]
    fn schedule_correct_from_any_node(pick in 0u8..6, seed in 0u64..5040) {
        let host = host_for(pick);
        if matches!(host.class(), supercayley::core::ScgClass::RotationStar
            | supercayley::core::ScgClass::RotationIs) {
            // No all-port theorem for RS/RIS; covered by build-level tests.
            return Ok(());
        }
        let schedule = AllPortSchedule::build(&host).unwrap();
        let u = Perm::from_rank(7, seed % factorial(7)).unwrap();
        for dim in schedule.dims() {
            let mut hops = dim.hops.to_vec();
            hops.sort_by_key(|h| h.time);
            let mut cur = u;
            for h in &hops {
                cur = schedule.links()[h.link].apply(&cur).unwrap();
            }
            let direct = Generator::transposition(dim.dimension).apply(&u).unwrap();
            prop_assert_eq!(cur, direct, "{} dim {}", host.name(), dim.dimension);
        }
    }

    /// Simulated packets between random pairs arrive in exactly the
    /// BFS-distance number of steps when alone in the network.
    #[test]
    fn lone_packet_takes_shortest_path(pick in 0u8..6, a in 0u32..120, b in 0u32..120) {
        let host = match pick % 3 {
            0 => SuperCayleyGraph::macro_star(2, 2).unwrap(),
            1 => SuperCayleyGraph::insertion_selection(5).unwrap(),
            _ => SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
        };
        let graph = host.to_graph(1_000).unwrap();
        let router = TableRouter::new(&graph).unwrap();
        let (src, dst) = (a % 120, b % 120);
        let mut sim = SyncSim::new(&graph, PortModel::AllPort);
        sim.inject(src, Packet { src, dst, payload: 0 }, &router).unwrap();
        let stats = sim.run(&router, 10_000).unwrap();
        let d = u64::from(graph.bfs_distances(src)[dst as usize]);
        prop_assert_eq!(stats.steps, d);
        // Router is consistent with adjacency.
        if src != dst {
            let slot = router.next_hop(src, &Packet { src, dst, payload: 0 }).unwrap();
            prop_assert!(slot < graph.out_degree(src));
        }
    }

    /// Embedding-by-label round trip: the path of every guest edge in the
    /// star→MS embedding is exactly the Theorem-1 expansion applied to the
    /// source label.
    #[test]
    fn embedding_paths_match_expansions(e_idx in 0usize..1000) {
        let star = supercayley::core::StarGraph::new(5).unwrap();
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let ce = supercayley::embed::CayleyEmbedding::build(&star, &host, 1_000).unwrap();
        let emb = ce.embedding();
        let edges: Vec<_> = emb.guest().edges().collect();
        let (u, v) = edges[e_idx % edges.len()];
        let path = emb.edge_path(
            emb.guest().edges().position(|e| e == (u, v)).unwrap(),
        );
        prop_assert_eq!(path[0], emb.node_map()[u as usize]);
        prop_assert_eq!(*path.last().unwrap(), emb.node_map()[v as usize]);
        prop_assert!(path.len() <= 4); // dilation 3
    }
}
