//! Observability layer: behavior-neutrality, goldens, and hook coverage.
//!
//! The load-bearing guarantee of the `obs` feature is that it *records*
//! and never *decides*: compiling the hooks in must not change a single
//! simulator or routing outcome. A single test binary cannot toggle its
//! own features, so [`sim_stats_match_golden_with_and_without_obs`] pins
//! the full [`SimStats`] of a fixed-seed faulty run to hard-coded golden
//! values; CI runs the suite both with `--features obs` and without, and
//! the same constants must hold on both legs.
//!
//! The routing-metrics golden drives a fixed-seed `scg_route` sweep on
//! MS(2,2) and RS(2,2) through a *local* [`Registry`] (the global one is
//! shared across concurrently running tests) and compares the text
//! exposition byte-for-byte against `tests/golden/route_metrics.txt`.

use supercayley::core::{
    materialize, scg_route, star_distance_between, CayleyNetwork, ScgClass, StarEmulation,
    SuperCayleyGraph, SMALL_NET_CAP,
};
use supercayley::emu::{Packet, PortModel, SimStats, SyncSim, TableRouter};
use supercayley::graph::{FaultSet, NodeId, SurvivorView};
use supercayley::obs::{Registry, Snapshot};
use supercayley::perm::XorShift64;

/// Same inclusive upper edges the `obs`-feature routing hooks use.
const HOPS_BOUNDS: [u64; 10] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32];

/// A fixed-seed faulty simulation on MS(2,2): 3 dead nodes, 30 packets
/// between live fixed-seed pairs, survivor-table routing. Everything the
/// run does is a pure function of the seed.
fn fixed_faulty_run() -> SimStats {
    let net = SuperCayleyGraph::macro_star(2, 2).expect("MS(2,2) constructs");
    let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
    let mut rng = XorShift64::new(0x0B5_CAFE);
    let faults = FaultSet::random_nodes(mat.num_nodes(), 3, &[], &mut rng);
    let view = SurvivorView::new(mat.graph(), &faults);
    let router = TableRouter::new_with_faults(mat.graph(), &faults).expect("small degrees");
    let mut sim = SyncSim::new(mat.graph(), PortModel::AllPort);
    for &node in &faults.failed_nodes() {
        sim.fail_node(node).expect("fault in range");
    }
    let mut injected = 0_u64;
    while injected < 30 {
        let s = rng.gen_range(mat.num_nodes()) as NodeId;
        let d = rng.gen_range(mat.num_nodes()) as NodeId;
        if s != d && view.is_alive(s) && view.is_alive(d) {
            let pkt = Packet {
                src: s,
                dst: d,
                payload: injected,
            };
            sim.inject(s, pkt, &router).expect("live pair routable");
            injected += 1;
        }
    }
    sim.run(&router, 10_000).expect("bounded run")
}

/// The golden stats for [`fixed_faulty_run`]. CI runs this test with and
/// without `--features obs`; both legs must reproduce these constants
/// exactly, which is the machine-checked statement that instrumentation
/// never perturbs simulation behavior.
#[test]
fn sim_stats_match_golden_with_and_without_obs() {
    let golden = SimStats {
        steps: 8,
        delivered: 30,
        transmissions: 166,
        max_link_traffic: 3,
        dropped: 0,
        retried: 0,
        recovered: 0,
        undelivered: 0,
        livelocked: false,
    };
    let stats = fixed_faulty_run();
    assert_eq!(stats, golden, "actual stats: {stats:?}");
    // And the run is replayable: same seed, same everything.
    assert_eq!(fixed_faulty_run(), golden);
}

/// Regression: a run with no packets must report a perfect delivery
/// ratio, not NaN from 0/0.
#[test]
fn delivered_ratio_of_empty_run_is_one() {
    let net = SuperCayleyGraph::macro_star(2, 2).expect("MS(2,2) constructs");
    let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
    let router = TableRouter::new(mat.graph()).expect("small degrees");
    let mut sim = SyncSim::new(mat.graph(), PortModel::AllPort);
    let stats = sim.run(&router, 100).expect("empty run settles");
    assert_eq!(stats.delivered + stats.dropped + stats.undelivered, 0);
    assert!((stats.delivered_ratio() - 1.0).abs() < f64::EPSILON);

    // The pure-arithmetic corner, independent of any simulator.
    let zero = SimStats {
        steps: 0,
        delivered: 0,
        transmissions: 0,
        max_link_traffic: 0,
        dropped: 0,
        retried: 0,
        recovered: 0,
        undelivered: 0,
        livelocked: false,
    };
    assert!((zero.delivered_ratio() - 1.0).abs() < f64::EPSILON);
    assert!(zero.delivered_ratio().is_finite());
}

/// Fixed-seed `scg_route` sweep on MS(2,2) and RS(2,2), recorded into a
/// local registry. Every hop count is cross-checked against the Theorem 1
/// dilation bound while the histograms fill.
fn route_sweep_snapshot() -> Snapshot {
    let reg = Registry::new();
    for net in [
        SuperCayleyGraph::macro_star(2, 2).expect("MS(2,2) constructs"),
        SuperCayleyGraph::new(ScgClass::RotationStar, 2, 2).expect("RS(2,2) constructs"),
    ] {
        let name = net.name();
        let labels = [("network", name.as_str())];
        let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
        let emu = StarEmulation::new(&net).expect("star emulation for star nuclei");
        let requests = reg.counter("route_requests_total", &labels);
        let hops = reg.histogram("route_hops", &labels, &HOPS_BOUNDS);
        let mut rng = XorShift64::new(0x60_1D);
        for _ in 0..64 {
            let s = rng.gen_range(mat.num_nodes()) as NodeId;
            let d = rng.gen_range(mat.num_nodes()) as NodeId;
            if s == d {
                continue;
            }
            let from = mat.node_label(s).expect("rank in range");
            let to = mat.node_label(d).expect("rank in range");
            let path = scg_route(&net, &from, &to).expect("route exists");
            assert!(
                path.len() as u32 <= emu.star_dilation() as u32 * star_distance_between(&from, &to),
                "{name}: {s}->{d} exceeded the dilation bound"
            );
            requests.inc();
            hops.observe(path.len() as u64);
        }
    }
    reg.snapshot()
}

/// The sweep's text exposition must match the checked-in golden
/// byte-for-byte — any drift in routing, ranking, the PRNG, or the
/// exposition format trips this.
#[test]
fn routing_metrics_match_golden_snapshot() {
    let snap = route_sweep_snapshot();
    let actual = snap.to_text();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/route_metrics.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &actual).expect("golden path writable");
    }
    let golden = include_str!("golden/route_metrics.txt");
    assert_eq!(
        actual, golden,
        "rerun with UPDATE_GOLDEN=1 if the change is intended"
    );
    // The snapshot must also survive its own JSON encoding.
    let back = Snapshot::from_json(&snap.to_json()).expect("exporter output parses");
    assert_eq!(back, snap);
}

/// With the hooks compiled in, routing and simulation leave visible
/// footprints in the global registry. Deltas are `>=` because other
/// tests in this binary share the process-wide registry.
#[cfg(feature = "obs")]
#[test]
fn hooks_populate_global_registry() {
    let reg = Registry::global();
    let net = SuperCayleyGraph::macro_star(2, 2).expect("MS(2,2) constructs");
    let name = net.name();
    let labels = [("network", name.as_str())];
    let misses_before = reg
        .counter("scg_topology_cache_misses_total", &labels)
        .get();
    let runs_before = reg.counter("scg_sim_runs_total", &[]).get();
    let delivered_before = reg.counter("scg_sim_delivered_total", &[]).get();

    let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
    let router = TableRouter::new(mat.graph()).expect("small degrees");
    let mut sim = SyncSim::new(mat.graph(), PortModel::AllPort);
    let pkt = Packet {
        src: 0,
        dst: (mat.num_nodes() - 1) as NodeId,
        payload: 7,
    };
    sim.inject(0, pkt, &router).expect("connected network");
    let stats = sim.run(&router, 1_000).expect("bounded run");
    assert_eq!(stats.delivered, 1);

    assert!(
        reg.counter("scg_topology_cache_misses_total", &labels)
            .get()
            > misses_before
            || reg.counter("scg_topology_cache_hits_total", &labels).get() > 0,
        "materialization left no cache footprint"
    );
    assert!(reg.counter("scg_sim_runs_total", &[]).get() > runs_before);
    assert!(reg.counter("scg_sim_delivered_total", &[]).get() > delivered_before);
}

/// The route planner leaves its own footprint: a build-time histogram
/// sample plus cache hit/miss counters, and repeated `scg_route` calls on
/// a warm plan only move the hit counter.
#[cfg(feature = "obs")]
#[test]
fn planner_hooks_populate_global_registry() {
    let reg = Registry::global();
    let net = SuperCayleyGraph::rotation_rotator(2, 2).expect("RR(2,2) constructs");
    let name = net.name();
    let labels = [("network", name.as_str())];
    let hits = reg.counter("scg_route_plan_cache_hits_total", &labels);
    let misses = reg.counter("scg_route_plan_cache_misses_total", &labels);
    let hits_before = hits.get();

    let mut rng = XorShift64::new(0x0B5);
    let from = supercayley::perm::Perm::random(5, &mut rng);
    let to = supercayley::perm::Perm::random(5, &mut rng);
    // First call may build (miss) or reuse a plan another test compiled;
    // either way it must count exactly one lookup.
    scg_route(&net, &from, &to).expect("route");
    scg_route(&net, &from, &to).expect("route");
    let hits_after = hits.get();
    let misses_after = misses.get();
    assert!(
        hits_after - hits_before >= 1,
        "second scg_route call did not hit the plan cache"
    );
    assert!(
        misses_after >= 1,
        "some call must have compiled RR(2,2)'s plan"
    );
    // A miss implies a recorded build duration. Same decade edges the
    // core timer hooks use.
    const MICROS_BOUNDS: [u64; 8] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
    let build = reg.histogram("scg_route_plan_build_micros", &labels, &MICROS_BOUNDS);
    assert!(build.count() >= misses_after, "plan build went untimed");
}

/// The global event trace records `sim.run.end` spans when the hooks are
/// live.
#[cfg(feature = "obs")]
#[test]
fn trace_records_run_end_events() {
    let net = SuperCayleyGraph::macro_star(2, 2).expect("MS(2,2) constructs");
    let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
    let router = TableRouter::new(mat.graph()).expect("small degrees");
    let mut sim = SyncSim::new(mat.graph(), PortModel::AllPort);
    sim.inject(
        0,
        Packet {
            src: 0,
            dst: 1,
            payload: 0,
        },
        &router,
    )
    .expect("connected network");
    sim.run(&router, 1_000).expect("bounded run");
    let trace = supercayley::obs::EventTrace::global();
    assert!(
        trace.events().iter().any(|e| e.name == "sim.run.end"),
        "no sim.run.end event in the global trace"
    );
}

/// Behavior-neutrality for the serving stack: the daemon's reply bytes
/// are a pure function of the request sequence, independent of the `obs`
/// feature (which only *mirrors* the server-local registry into the
/// global one). Every reply here is compared byte-for-byte against
/// frames re-encoded from feature-independent expectations — the
/// in-process router's hops, the known fault epoch, the typed refusal.
/// CI runs this on both legs; a single diverging byte fails one of them.
/// (`METRICS` bodies are excluded: histogram contents are timing-
/// dependent on *any* leg, so they are checked structurally instead.)
#[test]
fn serve_replies_are_byte_identical_across_obs_legs() {
    use supercayley::perm::Perm;
    use supercayley::serve::wire::{encode_reply, BatchItem, ErrCode};
    use supercayley::serve::{spawn, Client, Config, NetId, Reply, Request};

    let sock = std::env::temp_dir().join(format!("scg-obs-serve-{}.sock", std::process::id()));
    let server = spawn(Config {
        uds_path: sock.clone(),
        tcp: false,
        shards: 1,
    })
    .expect("daemon spawns");
    let net_id = NetId {
        class: ScgClass::MacroStar,
        levels: 2,
        box_size: 2,
    };
    let net = net_id.to_net().expect("MS(2,2) constructs");
    let mat = materialize(&net, SMALL_NET_CAP).expect("120 nodes under cap");
    let mut rng = XorShift64::new(0x0B5_5EED);
    let k = net.degree_k();
    let mut client = Client::connect_uds(&sock).expect("connect");

    // Fixed-seed pairs; expected hops from the in-process router, which
    // compiles identically on both legs (the hooks only observe).
    let pairs: Vec<(Perm, Perm)> = (0..8)
        .map(|_| (Perm::random(k, &mut rng), Perm::random(k, &mut rng)))
        .collect();
    let expect_frame = |reply: &Reply| encode_reply(reply);
    let recv_frame = |client: &mut Client| -> Vec<u8> {
        client
            .recv_with(|ftype, payload| {
                let mut frame = ((payload.len() + 2) as u32).to_le_bytes().to_vec();
                frame.push(1);
                frame.push(ftype);
                frame.extend_from_slice(payload);
                frame
            })
            .expect("reply frame")
    };

    let (from, to) = pairs[0];
    client
        .send(&Request::Route {
            net: net_id,
            from,
            to,
        })
        .expect("send route");
    assert_eq!(
        recv_frame(&mut client),
        expect_frame(&Reply::RouteOk {
            flags: 0,
            hops: scg_route(&net, &from, &to).expect("route"),
        }),
        "ROUTE reply bytes diverged"
    );

    client
        .send(&Request::RouteBatch {
            net: net_id,
            pairs: pairs.clone(),
        })
        .expect("send batch");
    assert_eq!(
        recv_frame(&mut client),
        expect_frame(&Reply::RouteBatchOk(
            pairs
                .iter()
                .map(|(f, t)| BatchItem {
                    status: 0,
                    flags: 0,
                    hops: scg_route(&net, f, t).expect("route"),
                })
                .collect(),
        )),
        "ROUTE_BATCH reply bytes diverged"
    );

    // One fault: epoch advances 0 -> 1 deterministically; routing to the
    // dead destination refuses with empty detail.
    let victim = pairs[1].1;
    let victim_node = mat.node_id(&victim).expect("node id");
    client
        .send(&Request::FaultReport {
            net: net_id,
            events: vec![supercayley::graph::ChaosEvent::FailNode(victim_node)],
        })
        .expect("send fault");
    assert_eq!(
        recv_frame(&mut client),
        expect_frame(&Reply::FaultOk {
            applied: 1,
            epoch: 1,
        }),
        "FAULT_REPORT reply bytes diverged"
    );
    client
        .send(&Request::Route {
            net: net_id,
            from: Perm::identity(k),
            to: victim,
        })
        .expect("send refused route");
    assert_eq!(
        recv_frame(&mut client),
        expect_frame(&Reply::Error {
            code: ErrCode::NoRoute,
            detail: String::new(),
        }),
        "typed-refusal bytes diverged"
    );

    // METRICS is structurally checked only (histogram contents are
    // timing-dependent regardless of feature leg).
    let text = client.metrics(false).expect("metrics");
    assert!(text.contains("scg_serve_routes_total 9"));
    assert!(text.contains("scg_serve_route_refused_total 1"));
    server.shutdown();
}
