//! Differential harness for the bit-packed permutation kernel: every
//! [`PackedPerm`] operation is raced against the [`Perm`] reference —
//! exhaustively over whole symmetric groups where feasible (`k ≤ 7`),
//! by seeded random sweep at the larger packed degrees (`k = 9..=16`),
//! and through the routing stack, where the packed star-sort must emit
//! byte-identical hop sequences to the legacy expansion on all ten
//! `k = 5` classes.

use supercayley::core::{route_plan, star_route, CayleyNetwork, Generator, SuperCayleyGraph};
use supercayley::perm::{PackedPerm, Perm, Permutations, XorShift64, MAX_PACKED_DEGREE};

fn packed_group(k: usize) -> Vec<(Perm, PackedPerm)> {
    Permutations::lexicographic(k)
        .map(|p| (p, PackedPerm::pack(&p).unwrap()))
        .collect()
}

/// Compose agrees with the reference on every ordered pair of `S_k` for
/// `k ≤ 5` (14 400 pairs at `k = 5`, trivially fewer below).
#[test]
fn compose_matches_perm_on_all_pairs_up_to_s5() {
    for k in 1..=5 {
        for (a, pa) in &packed_group(k) {
            for (b, pb) in &packed_group(k) {
                assert_eq!(
                    pa.compose(*pb),
                    PackedPerm::pack(&a.compose(b)).unwrap(),
                    "k={k}: {a} ∘ {b}"
                );
            }
        }
    }
}

/// Compose agrees with the reference on every ordered pair of `S_6`
/// (518 400 pairs).
#[test]
fn compose_matches_perm_on_all_pairs_of_s6() {
    let group = packed_group(6);
    for (a, pa) in &group {
        for (b, pb) in &group {
            assert_eq!(
                pa.compose(*pb),
                PackedPerm::pack(&a.compose(b)).unwrap(),
                "{a} ∘ {b}"
            );
        }
    }
}

/// Compose agrees with the reference on every ordered pair of `S_7`
/// (25 401 600 pairs). The left operands are split over scoped threads by
/// their lexicographic index so the sweep stays in the repo's debug-mode
/// test budget; the pair coverage is exhaustive regardless of the split.
#[test]
fn compose_matches_perm_on_all_pairs_of_s7() {
    let group = packed_group(7);
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let chunk = group.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for lefts in group.chunks(chunk) {
            let group = &group;
            scope.spawn(move || {
                for (a, pa) in lefts {
                    for (b, pb) in group {
                        assert_eq!(
                            pa.compose(*pb),
                            PackedPerm::pack(&a.compose(b)).unwrap(),
                            "{a} ∘ {b}"
                        );
                    }
                }
            });
        }
    });
}

/// Inverse, generator application (all star links `T_2..T_k`), and the
/// rank/unrank round-trip agree with the reference on every element of
/// `S_k` for `k ≤ 7` (5 913 permutations, each through every unary op).
#[test]
fn unary_ops_match_perm_on_every_element_up_to_s7() {
    for k in 1..=7 {
        let links: Vec<(usize, PackedPerm)> = (2..=k)
            .map(|i| {
                let g = Perm::identity(k).swapped(1, i).unwrap();
                (i, PackedPerm::pack(&g).unwrap())
            })
            .collect();
        for (p, packed) in &packed_group(k) {
            assert_eq!(
                packed.inverse(),
                PackedPerm::pack(&p.inverse()).unwrap(),
                "k={k}: {p} inverse"
            );
            assert_eq!(packed.rank(k).unwrap(), p.rank(), "k={k}: {p} rank");
            assert_eq!(
                PackedPerm::from_rank(k, p.rank()).unwrap(),
                *packed,
                "k={k}: rank {} unrank",
                p.rank()
            );
            for (i, pg) in &links {
                assert_eq!(
                    packed.apply_generator(*pg),
                    PackedPerm::pack(&p.swapped(1, *i).unwrap()).unwrap(),
                    "k={k}: {p} along T_{i}"
                );
            }
        }
    }
}

/// Seeded random sweep of the degrees exhaustion cannot reach: at every
/// `k` in `9..=16`, compose, inverse, generator application, and the
/// rank/unrank round-trip agree with the reference (`16! ≈ 2·10¹³` still
/// fits the `u64` rank domain).
#[test]
fn random_sweeps_match_perm_at_degrees_9_to_16() {
    let mut rng = XorShift64::new(0x9ACED);
    for k in 9..=MAX_PACKED_DEGREE {
        for _ in 0..200 {
            let a = Perm::random(k, &mut rng);
            let b = Perm::random(k, &mut rng);
            let (pa, pb) = (PackedPerm::pack(&a).unwrap(), PackedPerm::pack(&b).unwrap());
            assert_eq!(
                pa.compose(pb),
                PackedPerm::pack(&a.compose(&b)).unwrap(),
                "k={k}: {a} ∘ {b}"
            );
            assert_eq!(
                pa.inverse(),
                PackedPerm::pack(&a.inverse()).unwrap(),
                "k={k}: {a} inverse"
            );
            let i = 2 + (rng.next_u64() as usize) % (k - 1);
            let g = PackedPerm::pack(&Perm::identity(k).swapped(1, i).unwrap()).unwrap();
            assert_eq!(
                pa.apply_generator(g),
                PackedPerm::pack(&a.swapped(1, i).unwrap()).unwrap(),
                "k={k}: {a} along T_{i}"
            );
            assert_eq!(pa.rank(k).unwrap(), a.rank(), "k={k}: {a} rank");
            assert_eq!(
                PackedPerm::from_rank(k, a.rank()).unwrap(),
                pa,
                "k={k}: rank {} unrank",
                a.rank()
            );
        }
    }
}

/// Whatever leg the `compose` dispatch picks — the `pshufb` SIMD kernel
/// under the opt-in `simd` feature on an SSSE3-capable CPU, the scalar
/// nibble-gather otherwise — it is bit-identical to `compose_scalar`:
/// exhaustively over every ordered pair of `S_7` (25 401 600 pairs,
/// split across scoped threads like the reference sweep above), then by
/// seeded sweep at every packed degree `9..=16`. On the default leg
/// this pins dispatch ≡ scalar; under `--features simd` it is the
/// differential proof for the vector kernel.
#[test]
fn compose_dispatch_is_bit_identical_to_scalar_everywhere() {
    let group = packed_group(7);
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let chunk = group.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for lefts in group.chunks(chunk) {
            let group = &group;
            scope.spawn(move || {
                for (a, pa) in lefts {
                    for (b, pb) in group {
                        assert_eq!(pa.compose(*pb), pa.compose_scalar(*pb), "{a} ∘ {b}");
                    }
                }
            });
        }
    });
    let mut rng = XorShift64::new(0x51D_C0DE);
    for k in 9..=MAX_PACKED_DEGREE {
        for _ in 0..500 {
            let pa = PackedPerm::pack(&Perm::random(k, &mut rng)).unwrap();
            let pb = PackedPerm::pack(&Perm::random(k, &mut rng)).unwrap();
            assert_eq!(pa.compose(pb), pa.compose_scalar(pb), "k={k}: {pa} ∘ {pb}");
        }
    }
}

/// The packed `route_into` emits hop sequences byte-identical to the
/// legacy path — the optimal star route expanded link by link through the
/// plan's precompiled slices — on **every ordered pair** of `S_5` labels,
/// on **all ten** `k = 5` classes (144 000 routed pairs).
#[test]
fn route_into_is_byte_identical_to_legacy_on_all_ten_k5_classes() {
    let hosts = [
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
        SuperCayleyGraph::rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
        SuperCayleyGraph::macro_is(2, 2).unwrap(),
        SuperCayleyGraph::rotation_is(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
    ];
    let labels: Vec<Perm> = Permutations::lexicographic(5).collect();
    for net in &hosts {
        let plan = route_plan(net).unwrap();
        let mut buf = plan.new_buf();
        let mut legacy: Vec<Generator> = Vec::new();
        for from in &labels {
            for to in &labels {
                plan.route_into(from, to, &mut buf).unwrap();
                legacy.clear();
                for g in star_route(from, to) {
                    let Generator::Transposition { i } = g else {
                        unreachable!("star routes consist of transpositions")
                    };
                    legacy.extend_from_slice(plan.star_link(i as usize).unwrap());
                }
                assert_eq!(
                    buf.hops(),
                    legacy.as_slice(),
                    "{}: {from} -> {to}",
                    net.name()
                );
            }
        }
    }
}
