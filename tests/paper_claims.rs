//! End-to-end checks of the paper's headline claims, exercised through the
//! public facade API (each claim crosses at least two crates).

use supercayley::comm::{mnb_sdc, te_sdc};
use supercayley::core::{star_diameter, CayleyNetwork, NetworkReport, StarGraph, SuperCayleyGraph};
use supercayley::embed::CayleyEmbedding;
use supercayley::emu::{AllPortSchedule, SdcReport};
use supercayley::graph::SearchBudget;

const CAP: u64 = 50_000;

/// Theorem 1: slowdown 3 on MS and Complete-RS, embodied both as SDC
/// slowdown and star-embedding dilation.
#[test]
fn theorem_1_slowdown_3() {
    for host in [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
    ] {
        assert_eq!(SdcReport::measure(&host).unwrap().worst_slowdown, 3);
        let star = StarGraph::new(7).unwrap();
        let ce = CayleyEmbedding::build(&star, &host, CAP).unwrap();
        assert_eq!(ce.embedding().dilation(), 3);
        assert_eq!(ce.embedding().load(), 1);
        // Congestion max(2n, l) = 4, per-dimension <= 2.
        assert_eq!(ce.embedding().congestion(), 4);
        assert!(ce.max_dimension_congestion() <= 2);
    }
}

/// Theorems 2 and 3: slowdowns 2 (IS) and 4 (MIS / Complete-RIS).
#[test]
fn theorems_2_3_slowdowns() {
    let is7 = SuperCayleyGraph::insertion_selection(7).unwrap();
    assert_eq!(SdcReport::measure(&is7).unwrap().worst_slowdown, 2);
    for host in [
        SuperCayleyGraph::macro_is(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
    ] {
        assert_eq!(SdcReport::measure(&host).unwrap().worst_slowdown, 4);
    }
}

/// Theorem 4 + Figure 1: all-port slowdown max(2n, l+1); the Figure 1b
/// instance is 93%-utilized and fully busy through step 5.
#[test]
fn theorem_4_and_figure_1() {
    let fig1b = AllPortSchedule::build(&SuperCayleyGraph::macro_star(5, 3).unwrap()).unwrap();
    assert_eq!(fig1b.makespan(), 6);
    assert_eq!(fig1b.fully_used_through(), 5);
    assert!((fig1b.utilization() - 39.0 / 42.0).abs() < 1e-12);
    let fig1a = AllPortSchedule::build(&SuperCayleyGraph::macro_star(4, 3).unwrap()).unwrap();
    assert_eq!(fig1a.makespan(), 6); // max(2·3, 4+1)
}

/// Theorem 6: TN dilation 5 (l = 2) and 7 (l >= 3) — measured on the
/// validated embedding, not just the expansion table.
#[test]
fn theorem_6_tn_dilations() {
    let tn = supercayley::core::TranspositionNetwork::new(7).unwrap();
    let l2 = SuperCayleyGraph::macro_star(2, 3).unwrap();
    let ce2 = CayleyEmbedding::build(&tn, &l2, CAP).unwrap();
    assert_eq!(ce2.embedding().dilation(), 5);
    let l3 = SuperCayleyGraph::macro_star(3, 2).unwrap();
    let ce3 = CayleyEmbedding::build(&tn, &l3, CAP).unwrap();
    assert_eq!(ce3.embedding().dilation(), 7);
}

/// The star diameter formula ⌊3(k−1)/2⌋ and vertex transitivity, through
/// the materialized-graph pipeline.
#[test]
fn star_reference_properties() {
    for k in 4..=6 {
        let r = NetworkReport::measure(&StarGraph::new(k).unwrap(), CAP).unwrap();
        assert_eq!(r.diameter, star_diameter(k));
        assert!(r.transitive_check);
        assert!(r.diameter >= r.moore_bound);
    }
}

/// Corollary 2 (SDC flavor): the strictly optimal MNB takes exactly
/// N − 1 = k! − 1 steps.
#[test]
fn mnb_sdc_strictly_optimal() {
    let star4 = StarGraph::new(4).unwrap();
    let r = mnb_sdc(&star4, CAP, &mut SearchBudget::new(100_000_000)).unwrap();
    assert_eq!(r.steps, 23);
}

/// Corollary 3 (SDC flavor): TE optimum is the distance sum, and the
/// low-degree host pays more than the star on the same node count.
#[test]
fn te_tradeoff_shape() {
    let star = te_sdc(&StarGraph::new(5).unwrap(), CAP).unwrap();
    let ms = te_sdc(&SuperCayleyGraph::macro_star(2, 2).unwrap(), CAP).unwrap();
    let is5 = te_sdc(&SuperCayleyGraph::insertion_selection(5).unwrap(), CAP).unwrap();
    assert!(star.steps < ms.steps, "low degree costs time");
    assert!(
        is5.steps <= star.steps,
        "IS(5) has higher degree than the 5-star"
    );
}

/// Theorem 1/2/3 corollary, observed per-route: every routed hop count
/// stays within `star_dilation × star_distance`, the same bound the
/// observability sweep (`tab_obs`) histograms against. Fixed-seed pair
/// samples on one class per dilation constant.
#[test]
fn routed_hops_respect_dilation_bounds() {
    use supercayley::core::{
        materialize, scg_route, star_distance_between, StarEmulation, SMALL_NET_CAP,
    };
    for net in [
        SuperCayleyGraph::macro_star(2, 2).unwrap(), // dilation 3
        SuperCayleyGraph::rotation_star(2, 2).unwrap(), // dilation 3
        SuperCayleyGraph::insertion_selection(5).unwrap(), // dilation 2
        SuperCayleyGraph::macro_is(2, 2).unwrap(),   // dilation 4
    ] {
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let emu = StarEmulation::new(&net).unwrap();
        let mut rng = supercayley::perm::XorShift64::new(0xD11A);
        for _ in 0..50 {
            let s = rng.gen_range(mat.num_nodes()) as supercayley::graph::NodeId;
            let d = rng.gen_range(mat.num_nodes()) as supercayley::graph::NodeId;
            let from = mat.node_label(s).unwrap();
            let to = mat.node_label(d).unwrap();
            let path = scg_route(&net, &from, &to).unwrap();
            assert!(
                path.len() as u32 <= emu.star_dilation() as u32 * star_distance_between(&from, &to),
                "{}: {s}->{d} took {} hops",
                net.name(),
                path.len()
            );
        }
    }
}

/// All ten classes construct, are vertex-transitive, and their game view
/// solves scrambles back to sorted (spanning bag + core + graph).
#[test]
fn ten_classes_game_roundtrip() {
    let mut rng = supercayley::perm::XorShift64::new(3);
    for class in supercayley::core::ScgClass::ALL {
        let net = if class == supercayley::core::ScgClass::InsertionSelection {
            SuperCayleyGraph::insertion_selection(5).unwrap()
        } else {
            SuperCayleyGraph::new(class, 2, 2).unwrap()
        };
        let report = NetworkReport::measure(&net, CAP).unwrap();
        assert!(report.transitive_check, "{}", net.name());
        let game = supercayley::bag::BagGame::new(net);
        let c = game.scramble(15, &mut rng);
        let sol = game.solve(&c).unwrap();
        assert!(game.replay(&c, &sol).unwrap().is_solved());
    }
}
