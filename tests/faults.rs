//! Fault-tolerance properties across all ten classes at Table II sizes
//! (k = 5, 120 nodes): connectivity equals degree (verified by the
//! max-flow audit), any `degree − 1` node faults leave the survivors
//! strongly connected, and `scg_route_faulty` delivers every sampled pair
//! under such faults — within the dilation bound whenever no fault
//! handling fired.

use supercayley::core::{
    materialize, scg_route_faulty, star_distance_between, CayleyNetwork, CoreError, Generator,
    Materialized, StarEmulation, SuperCayleyGraph, SMALL_NET_CAP,
};
use supercayley::graph::{edge_connectivity, vertex_connectivity, FaultSet, SurvivorView};
use supercayley::perm::{Perm, XorShift64};

/// The graph-theoretic degree: distinct out-neighbors, minimized over
/// nodes. In the IS-family classes the nucleus transposition duplicates
/// `I_2`, so this is one less than the generator count; the paper's
/// "connectivity equals degree" holds for *this* degree.
fn distinct_degree(mat: &Materialized) -> usize {
    let graph = mat.graph();
    (0..graph.num_nodes())
        .map(|u| {
            let mut v: Vec<u32> = graph.out_neighbors(u as u32).to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        })
        .min()
        .unwrap()
}

/// All ten classes of Table II at k = nl + 1 = 5.
fn ten_classes() -> Vec<SuperCayleyGraph> {
    vec![
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
        SuperCayleyGraph::rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
        SuperCayleyGraph::macro_is(2, 2).unwrap(),
        SuperCayleyGraph::rotation_is(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
    ]
}

#[test]
fn connectivity_equals_degree_for_all_ten_classes() {
    for net in ten_classes() {
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let graph = mat.graph();
        assert_eq!(
            vertex_connectivity(graph),
            distinct_degree(&mat),
            "vertex connectivity of {}",
            net.name()
        );
        // Parallel links (duplicated generators) add edge capacity, so the
        // multigraph edge connectivity equals the generator count.
        assert_eq!(
            edge_connectivity(graph),
            mat.node_degree(),
            "edge connectivity of {}",
            net.name()
        );
    }
}

#[test]
fn degree_minus_one_node_faults_keep_survivors_connected() {
    for net in ten_classes() {
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let degree = distinct_degree(&mat);
        let graph = mat.graph();
        for seed in 0..4u64 {
            let mut rng = XorShift64::new(0xFA01 + seed);
            let faults = FaultSet::random_nodes(mat.num_nodes(), degree - 1, &[], &mut rng);
            let view = SurvivorView::new(graph, &faults);
            assert!(
                view.is_strongly_connected(),
                "{} disconnected by {:?} (seed {seed})",
                net.name(),
                faults.failed_nodes()
            );
            let census = view.component_census();
            assert_eq!(census.num_components(), 1);
            assert_eq!(census.largest(), mat.num_nodes() - (degree - 1));
        }
    }
}

/// Walks `hops` from `src` in id space, asserting every traversed link is
/// live; returns the endpoint.
fn walk_avoiding(
    net: &SuperCayleyGraph,
    mat: &Materialized,
    faults: &FaultSet,
    src: u32,
    hops: &[Generator],
) -> u32 {
    let gens = net.generators();
    let mut cur = src;
    for &g in hops {
        let gi = gens.iter().position(|&h| h == g).unwrap();
        let v = mat.neighbor_id(cur, gi);
        assert!(!faults.blocks(cur, v), "hop {cur} → {v} is faulted");
        cur = v;
    }
    cur
}

#[test]
fn faulty_routing_delivers_every_sampled_pair() {
    for net in ten_classes() {
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let degree = distinct_degree(&mat);
        let emu = StarEmulation::new(&net).unwrap();
        let mut rng = XorShift64::new(0xFA20);
        let faults = FaultSet::random_nodes(mat.num_nodes(), degree - 1, &[], &mut rng);
        let (mut delivered, mut fallbacks, mut detoured) = (0u32, 0u32, 0u32);
        let mut sampled = 0u32;
        while sampled < 30 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let src = mat.node_id(&from).unwrap();
            let dst = mat.node_id(&to).unwrap();
            if faults.node_failed(src) || faults.node_failed(dst) {
                continue;
            }
            sampled += 1;
            let routed = scg_route_faulty(&net, &mat, &from, &to, &faults)
                .unwrap_or_else(|e| panic!("{}: {src} → {dst} failed: {e}", net.name()));
            assert_eq!(walk_avoiding(&net, &mat, &faults, src, &routed.hops), dst);
            delivered += 1;
            fallbacks += u32::from(routed.fallback_used);
            detoured += u32::from(routed.detours > 0);
            if routed.detours == 0 && !routed.fallback_used {
                assert!(
                    routed.len() as u32
                        <= emu.star_dilation() as u32 * star_distance_between(&from, &to),
                    "{}: clean route exceeds the dilation bound",
                    net.name()
                );
            }
        }
        // 100% delivery; fallback_used is recorded (the counters exist and
        // are consistent even when zero fault handling was needed).
        assert_eq!(delivered, sampled, "{}", net.name());
        assert!(fallbacks <= detoured + fallbacks, "{}", net.name());
    }
}

#[test]
fn route_to_failed_destination_reports_no_route() {
    let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let mat = materialize(&net, SMALL_NET_CAP).unwrap();
    let from = Perm::identity(5);
    let to = Perm::from_rank(5, 42).unwrap();
    let mut faults = FaultSet::new();
    faults.fail_node(mat.node_id(&to).unwrap());
    assert!(matches!(
        scg_route_faulty(&net, &mat, &from, &to, &faults),
        Err(CoreError::NoRoute)
    ));
}

#[test]
fn reembed_under_degree_minus_1_faults_preserves_bounds() {
    // The Corollary 5 cube guest maps 4 of the 120 host nodes; excluding
    // those, any `degree - 1` random node faults must re-embed on every
    // class with the node map and load unchanged, every hyperpath live,
    // and dilation within the detour router's measured envelope (worst
    // observed 26 across 20 seeds x 10 classes; 32 is the regression
    // bound, not a theorem).
    for net in ten_classes() {
        let ir = supercayley::embed::hypercube_into_scg(&net, SMALL_NET_CAP)
            .unwrap()
            .into_ir();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let degree = distinct_degree(&mat);
        let mapped = ir.node_map().to_vec();
        for seed in 0..5u64 {
            let mut rng = XorShift64::new(0xE3BED + seed);
            let faults = FaultSet::random_nodes(mat.num_nodes(), degree - 1, &mapped, &mut rng);
            let r = supercayley::embed::reembed_scg(&ir, &net, &mat, &faults)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", net.name()));
            assert_eq!(r.node_map(), ir.node_map(), "{}", net.name());
            assert_eq!(r.load(), ir.load(), "{}", net.name());
            let view = SurvivorView::new(mat.graph(), &faults);
            for edge in 0..r.num_program_edges() {
                assert!(
                    view.path_is_live(r.hyperpath_at(edge)),
                    "{} seed {seed}: edge {edge} crosses a fault",
                    net.name()
                );
            }
            assert!(
                r.dilation() <= 32,
                "{} seed {seed}: dilation {} outside the measured envelope",
                net.name(),
                r.dilation()
            );
        }
    }
}

/// Builds an interleaved fail/repair schedule (nodes and undirected
/// links) that never holds more than `cap` concurrent faults, verified
/// afterwards by [`FaultSchedule::peak_concurrent_faults`].
fn bounded_lifecycle_schedule(
    mat: &Materialized,
    cap: usize,
    rng: &mut XorShift64,
) -> supercayley::graph::FaultSchedule {
    use supercayley::graph::{ChaosEvent, TimedEvent};
    let graph = mat.graph();
    let mut events = Vec::new();
    // (repair_at, repair_event) for faults currently held open.
    let mut active: Vec<(u64, ChaosEvent)> = Vec::new();
    let mut at = 2u64;
    for _ in 0..(4 * cap) {
        active.retain(|(repair_at, ev)| {
            if *repair_at <= at {
                events.push(TimedEvent {
                    at: *repair_at,
                    event: *ev,
                });
                false
            } else {
                true
            }
        });
        if active.len() < cap {
            let repair_at = at + 4 + rng.gen_range(8) as u64;
            if rng.gen_range(2) == 0 {
                let u = rng.gen_range(mat.num_nodes()) as u32;
                events.push(TimedEvent {
                    at,
                    event: ChaosEvent::FailNode(u),
                });
                active.push((repair_at, ChaosEvent::RepairNode(u)));
            } else {
                let (u, v) = graph.edge_endpoints(rng.gen_range(graph.num_edges()));
                events.push(TimedEvent {
                    at,
                    event: ChaosEvent::FailLinkUndirected(u, v),
                });
                active.push((repair_at, ChaosEvent::RepairLinkUndirected(u, v)));
            }
        }
        at += 2;
    }
    for (repair_at, ev) in active {
        events.push(TimedEvent {
            at: repair_at,
            event: ev,
        });
    }
    supercayley::graph::FaultSchedule::from_events(events)
}

/// Tentpole property: under ANY interleaved schedule of at most
/// `degree − 1` concurrent node + undirected-link faults, a table router
/// refreshed in place at every fault epoch delivers 100% of sampled live
/// pairs — connectivity-equals-degree carried through the full fault
/// lifecycle, repairs included.
#[test]
fn bounded_fault_lifecycle_keeps_refreshed_routing_total() {
    use supercayley::emu::{NextHop, Packet, Router, TableRouter};
    for net in ten_classes() {
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let graph = mat.graph();
        let degree = distinct_degree(&mat);
        for seed in 0..3u64 {
            let mut rng = XorShift64::new(0x11FE_C7C1E ^ seed);
            let mut schedule = bounded_lifecycle_schedule(&mat, degree - 1, &mut rng);
            assert!(
                schedule.peak_concurrent_faults() < degree,
                "{} seed {seed}: schedule exceeds the concurrency bound",
                net.name()
            );
            let mut faults = FaultSet::new();
            let mut router = TableRouter::new(graph).unwrap();
            while let Some(t) = schedule.next_at() {
                schedule.apply_due(t, &mut faults);
                if router.is_stale(&faults) {
                    router.refresh_with_faults(graph, &faults).unwrap();
                }
                assert!(!router.is_stale(&faults));
                let view = SurvivorView::new(graph, &faults);
                assert!(
                    view.is_strongly_connected(),
                    "{} seed {seed} t={t}: survivors disconnected under {} faults",
                    net.name(),
                    degree - 1
                );
                for _ in 0..20 {
                    let src = rng.gen_range(mat.num_nodes()) as u32;
                    let dst = rng.gen_range(mat.num_nodes()) as u32;
                    if src == dst || !view.is_alive(src) || !view.is_alive(dst) {
                        continue;
                    }
                    let pkt = Packet {
                        src,
                        dst,
                        payload: 0,
                    };
                    let mut path = vec![src];
                    let mut here = src;
                    loop {
                        match router.next_hop(here, &pkt) {
                            NextHop::Deliver => break,
                            NextHop::Forward(slot) => {
                                here = graph.out_neighbors(here)[slot];
                                path.push(here);
                            }
                            NextHop::Unreachable => panic!(
                                "{} seed {seed} t={t}: {src}->{dst} unreachable on a \
                                 refreshed table",
                                net.name()
                            ),
                        }
                        assert!(
                            path.len() <= mat.num_nodes(),
                            "{} seed {seed} t={t}: {src}->{dst} routing loop",
                            net.name()
                        );
                    }
                    assert_eq!(here, dst);
                    assert!(
                        view.path_is_live(&path),
                        "{} seed {seed} t={t}: {src}->{dst} routed through a fault",
                        net.name()
                    );
                }
            }
            assert!(schedule.is_exhausted());
        }
    }
}

/// Determinism property: replaying the same seeded chaos schedule through
/// the same self-healing loop configuration yields byte-identical
/// reports — statistics, recovery records, and degradation curves.
#[test]
fn same_seed_chaos_replay_is_byte_identical() {
    use supercayley::emu::{run_chaos, ChaosConfig};
    use supercayley::graph::{ChaosSpec, FaultSchedule};
    for (i, net) in ten_classes().into_iter().enumerate() {
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let graph = mat.graph();
        let spec = ChaosSpec {
            horizon: 48,
            link_flaps: 1,
            ..ChaosSpec::default()
        };
        let config = ChaosConfig {
            inject_until: 64,
            max_cycles: 512,
            ..ChaosConfig::default()
        };
        let seed = 0xD1CE ^ i as u64;
        let mut a = FaultSchedule::random(graph, &spec, seed);
        let mut b = FaultSchedule::random(graph, &spec, seed);
        assert_eq!(
            a.events(),
            b.events(),
            "{}: schedule generation drifted",
            net.name()
        );
        let ra = run_chaos(graph, &mut a, &config).unwrap();
        let rb = run_chaos(graph, &mut b, &config).unwrap();
        assert_eq!(
            ra.stats,
            rb.stats,
            "{}: SimStats drifted across replays",
            net.name()
        );
        assert_eq!(
            ra,
            rb,
            "{}: chaos report drifted across replays",
            net.name()
        );
    }
}
