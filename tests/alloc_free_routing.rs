//! Proves the planner's zero-allocation claim with a counting allocator:
//! once a network's plan is compiled and a [`RouteBuf`] is warmed, any
//! number of `route_into` calls touch the heap exactly zero times.
//!
//! This file holds a single test because the counting `#[global_allocator]`
//! is process-wide; the counter additionally only ticks on the armed test
//! thread, so libtest's own helper threads cannot perturb it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use supercayley::core::{route_plan, CayleyNetwork, SuperCayleyGraph};
use supercayley::perm::{Perm, XorShift64};

/// Passes through to [`System`], counting every allocation and
/// reallocation made by the armed test thread (frees are not counted —
/// the claim is about acquiring heap memory on the steady-state path).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread counts while armed: libtest's own helper
    /// threads (the slow-test monitor, output capture) may allocate at
    /// any moment and must not perturb the measurement window.
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Const-initialized `Cell<bool>` TLS never allocates or runs
/// destructors, so reading it inside the allocator cannot recurse;
/// `try_with` covers access during thread teardown.
fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_route_into_performs_zero_heap_allocations() {
    // Warm everything that is allowed to allocate: the compiled plan, the
    // route buffer, and the sample pairs.
    // MS(6,2) (k = 13) exercises the packed u64 kernel near its widest
    // in-repo use; IS(17) (k = 17 > MAX_PACKED_DEGREE) exercises the
    // byte-array fallback — both single-pair paths must stay heap-free.
    let nets = [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(7).unwrap(),
        SuperCayleyGraph::complete_rotation_rotator(3, 2).unwrap(),
        SuperCayleyGraph::macro_star(6, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(17).unwrap(),
    ];
    let mut rng = XorShift64::new(0xA110C);
    for net in &nets {
        let plan = route_plan(net).unwrap();
        let mut buf = plan.new_buf();
        let k = net.degree_k();
        let pairs: Vec<(Perm, Perm)> = (0..256)
            .map(|_| (Perm::random(k, &mut rng), Perm::random(k, &mut rng)))
            .collect();
        // One warm-up pass, then the counted passes.
        let mut total_hops = 0usize;
        plan.route_into(&pairs[0].0, &pairs[0].1, &mut buf).unwrap();

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        ARMED.with(|a| a.set(true));
        for (from, to) in &pairs {
            plan.route_into(from, to, &mut buf).unwrap();
            total_hops += buf.len();
        }
        ARMED.with(|a| a.set(false));
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{}: routing {} pairs ({total_hops} hops) touched the allocator",
            net.name(),
            pairs.len()
        );
        assert!(total_hops > 0, "sample routed no hops");
    }
}
