//! Cross-crate checks of the compiled route planner: plan lookups are
//! byte-identical to fresh [`StarEmulation`] output, batch routing equals
//! sequential routing, and every planned route respects the Theorem 1–3
//! dilation bound.

use supercayley::core::{
    apply_path, route_batch, route_plan, scg_route, star_diameter, star_distance_between,
    CayleyNetwork, Generator, StarEmulation, SuperCayleyGraph,
};
use supercayley::perm::{Perm, XorShift64};

fn all_classes_small() -> Vec<SuperCayleyGraph> {
    vec![
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
        SuperCayleyGraph::rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_rotator(2, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
        SuperCayleyGraph::macro_is(2, 2).unwrap(),
        SuperCayleyGraph::rotation_is(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
    ]
}

/// Every link expansion the shared cached plan serves is byte-identical to
/// what a fresh `StarEmulation` computes, on all ten classes.
#[test]
fn cached_plans_match_fresh_emulation_on_all_classes() {
    for net in all_classes_small() {
        let plan = route_plan(&net).unwrap();
        let emu = StarEmulation::new(&net).unwrap();
        let k = net.degree_k();
        assert_eq!(plan.star_dilation(), emu.star_dilation(), "{}", net.name());
        for j in 2..=k {
            assert_eq!(
                plan.star_link(j).unwrap(),
                emu.expand_star_link(j).unwrap().as_slice(),
                "{} T_{j}",
                net.name()
            );
        }
        for i in 1..=k {
            for j in i + 1..=k {
                assert_eq!(
                    plan.tn_link(i, j).unwrap(),
                    emu.expand_tn_link(i, j).unwrap().as_slice(),
                    "{} T_{{{i},{j}}}",
                    net.name()
                );
            }
        }
    }
}

/// `route_batch` over several threads returns exactly the routes sequential
/// `scg_route` produces, in input order.
#[test]
fn route_batch_equals_sequential_routing() {
    let mut rng = XorShift64::new(0x9A7E);
    for net in all_classes_small() {
        let k = net.degree_k();
        let pairs: Vec<(Perm, Perm)> = (0..64)
            .map(|_| (Perm::random(k, &mut rng), Perm::random(k, &mut rng)))
            .collect();
        for threads in [1, 3, 8] {
            let batch = route_batch(&net, &pairs, threads).unwrap();
            assert_eq!(batch.len(), pairs.len());
            for (route, (from, to)) in batch.iter().zip(&pairs) {
                assert_eq!(
                    route,
                    &scg_route(&net, from, to).unwrap(),
                    "{} threads={threads}",
                    net.name()
                );
            }
        }
    }
}

/// Packed batch routing is a pure function of the pairs: the same seeded
/// 64-pair set routes to byte-identical paths whatever the thread count —
/// and hence whatever the chunk size (64 threads → 1 pair per chunk, 10 →
/// 7, 1 → all 64), since `route_batch` derives its chunking from the
/// thread count. Sequential `route_into` on a held plan is the reference.
#[test]
fn route_batch_output_is_independent_of_chunking_and_threads() {
    let mut rng = XorShift64::new(0xC4053);
    for net in all_classes_small() {
        let plan = route_plan(&net).unwrap();
        let k = net.degree_k();
        let pairs: Vec<(Perm, Perm)> = (0..64)
            .map(|_| (Perm::random(k, &mut rng), Perm::random(k, &mut rng)))
            .collect();
        let mut buf = plan.new_buf();
        let reference: Vec<Vec<Generator>> = pairs
            .iter()
            .map(|(from, to)| {
                plan.route_into(from, to, &mut buf).unwrap();
                buf.hops().to_vec()
            })
            .collect();
        for threads in [64, 10, 1] {
            assert_eq!(
                route_batch(&net, &pairs, threads).unwrap(),
                reference,
                "{} threads={threads}",
                net.name()
            );
        }
    }
}

/// Every planned route walks `from` to `to` and obeys the paper's bound:
/// at most `star_dilation × star_distance(from, to)` hops (hence at most
/// `star_dilation × star_diameter` anywhere).
#[test]
fn planned_routes_arrive_within_the_dilation_bound() {
    let mut rng = XorShift64::new(0xB0CD);
    for net in all_classes_small() {
        let plan = route_plan(&net).unwrap();
        let k = net.degree_k();
        let mut buf = plan.new_buf();
        for _ in 0..50 {
            let from = Perm::random(k, &mut rng);
            let to = Perm::random(k, &mut rng);
            plan.route_into(&from, &to, &mut buf).unwrap();
            assert_eq!(apply_path(&from, buf.hops()).unwrap(), to, "{}", net.name());
            let bound = plan.star_dilation() as u32 * star_distance_between(&from, &to);
            assert!(
                buf.len() as u32 <= bound,
                "{}: {} hops > bound {bound}",
                net.name(),
                buf.len()
            );
            assert!(buf.len() as u32 <= plan.star_dilation() as u32 * star_diameter(k));
        }
    }
}

/// The planner works on networks far too large to materialize: `MS(6,2)`
/// has `13!` ≈ 6.2 billion nodes, yet plans compile in `O(k²)` and routes
/// still verify by label walking.
#[test]
fn plans_route_networks_too_large_to_materialize() {
    let big = SuperCayleyGraph::macro_star(6, 2).unwrap();
    let plan = route_plan(&big).unwrap();
    let mut rng = XorShift64::new(0xFEED);
    let mut buf = plan.new_buf();
    for _ in 0..20 {
        let from = Perm::random(13, &mut rng);
        let to = Perm::random(13, &mut rng);
        plan.route_into(&from, &to, &mut buf).unwrap();
        assert_eq!(apply_path(&from, buf.hops()).unwrap(), to);
        for g in buf.hops() {
            assert!(
                big.generators().contains(g),
                "route uses a non-generator {g}"
            );
        }
    }
}

/// Plans for the same network are shared: two lookups return the same arena.
#[test]
fn plan_cache_shares_one_arena_per_network() {
    let net = SuperCayleyGraph::rotation_is(2, 2).unwrap();
    let a = route_plan(&net).unwrap();
    let b = route_plan(&net).unwrap();
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    // And a same-shape network of a different class gets a different plan.
    let other = route_plan(&SuperCayleyGraph::macro_is(2, 2).unwrap()).unwrap();
    assert!(!std::sync::Arc::ptr_eq(&a, &other));
}

/// Mixed-degree pairs are rejected without panicking, batch included.
#[test]
fn degree_mismatches_surface_as_errors() {
    let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let bad = Perm::identity(7);
    let good = Perm::identity(5);
    assert!(scg_route(&net, &bad, &good).is_err());
    let pairs = vec![(good, good), (bad, good)];
    assert!(route_batch(&net, &pairs, 2).is_err());
    let empty: Vec<(Perm, Perm)> = Vec::new();
    assert_eq!(
        route_batch(&net, &empty, 4).unwrap(),
        Vec::<Vec<Generator>>::new()
    );
}
