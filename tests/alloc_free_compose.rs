//! Proves the zero-copy claim of [`EmbeddingIr::compose`] with a counting
//! allocator: splicing two embeddings allocates a small constant number of
//! vectors (the composed node map, the shared path arena, and the offset
//! table — sized exactly in a pre-pass), never one per guest edge.
//!
//! This file holds a single test because the counting `#[global_allocator]`
//! is process-wide — unrelated concurrent tests would perturb the counter.
//!
//! [`EmbeddingIr::compose`]: supercayley::embed::EmbeddingIr::compose

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use supercayley::core::{CayleyNetwork, SuperCayleyGraph, TranspositionNetwork, SMALL_NET_CAP};
use supercayley::embed::{factorial_mesh_into_tn, CayleyEmbedding};

/// Passes through to [`System`], counting every allocation and
/// reallocation (frees are not counted — the claim is about acquiring
/// heap memory on the compose path).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn compose_allocates_a_small_constant_not_per_edge() {
    // The Corollary 7 composition: the 2x3x4x5 factorial mesh (120 nodes,
    // 426 directed edges) through the 5-TN into MS(2,2). Everything that
    // may allocate freely is built first.
    let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let k = net.degree_k();
    let mesh = factorial_mesh_into_tn(k, SMALL_NET_CAP).unwrap().into_ir();
    let tn = TranspositionNetwork::new(k).unwrap();
    let outer = CayleyEmbedding::build(&tn, &net, SMALL_NET_CAP)
        .unwrap()
        .into_embedding()
        .into_ir();
    let edges = mesh.num_program_edges();
    assert!(edges > 100, "the mesh guest must be non-trivial");

    // One warm-up compose, then the counted one.
    let warm = mesh.compose(&outer).unwrap();
    assert_eq!(warm.load(), 1);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let composed = mesh.compose(&outer).unwrap();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    let allocs = after - before;

    assert!(
        allocs <= 8,
        "compose of {edges} guest edges performed {allocs} allocations; \
         expected the constant handful (map + arena + offsets)"
    );
    assert!(
        (allocs as usize) < edges / 10,
        "allocation count {allocs} scales with the {edges} guest edges"
    );
    assert!(composed.dilation() >= 1);
    assert_eq!(composed.num_program_edges(), edges);
}
