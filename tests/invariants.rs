//! Cross-crate structural invariants tying independent implementations
//! together: parity/bipartiteness, congestion ↔ pipelining, and the game ↔
//! diameter correspondence.

use supercayley::bag::BagGame;
use supercayley::core::{materialize, CayleyNetwork, StarGraph, SuperCayleyGraph, SMALL_NET_CAP};
use supercayley::embed::CayleyEmbedding;
use supercayley::emu::pipelined_dimension_cost;
use supercayley::perm::Perm;

/// Star graphs are bipartite (all generators are transpositions), and the
/// bipartition is exactly permutation parity.
#[test]
fn star_graph_bipartition_is_parity() {
    let star = StarGraph::new(5).unwrap();
    let mat = materialize(&star, SMALL_NET_CAP).unwrap();
    let colors = mat
        .graph()
        .bipartition()
        .expect("star graphs are bipartite");
    let even_side = colors[0];
    for r in 0..120u64 {
        let p = Perm::from_rank(5, r).unwrap();
        assert_eq!(colors[r as usize] == even_side, p.is_even(), "rank {r}");
    }
}

/// Insertion-selection networks are NOT bipartite: I_3 is a 3-cycle, an
/// even permutation, so odd cycles exist.
#[test]
fn is_network_is_not_bipartite() {
    let is5 = SuperCayleyGraph::insertion_selection(5).unwrap();
    let mat = materialize(&is5, SMALL_NET_CAP).unwrap();
    assert!(mat.graph().bipartition().is_none());
}

/// The steady-state pipelined slowdown of a dimension equals that
/// dimension's embedding congestion — two very different computations
/// (queueing schedule vs per-link path counting) agreeing.
#[test]
fn pipelined_bottleneck_equals_dimension_congestion() {
    let host = SuperCayleyGraph::macro_star(3, 2).unwrap();
    let star = StarGraph::new(7).unwrap();
    let ce = CayleyEmbedding::build(&star, &host, 50_000).unwrap();
    for (gi, g) in ce.guest_generators().iter().enumerate() {
        let supercayley::core::Generator::Transposition { i } = g else {
            unreachable!()
        };
        let cost = pipelined_dimension_cost(&host, *i as usize, 500).unwrap();
        assert_eq!(
            cost.bottleneck,
            ce.congestion_of_dimension(gi),
            "dimension {i}"
        );
    }
}

/// God's number of the ball game equals the measured network diameter for
/// every undirected class at k = 5.
#[test]
fn gods_number_is_diameter_for_undirected_classes() {
    for host in [
        SuperCayleyGraph::macro_star(2, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
        SuperCayleyGraph::insertion_selection(5).unwrap(),
        SuperCayleyGraph::macro_is(2, 2).unwrap(),
    ] {
        let report = supercayley::core::NetworkReport::measure(&host, SMALL_NET_CAP).unwrap();
        let game = BagGame::new(host);
        assert_eq!(game.gods_number(SMALL_NET_CAP).unwrap(), report.diameter);
    }
}

/// Generator orders divide the group order (Lagrange), exercised through
/// the whole generator zoo.
#[test]
fn generator_orders_divide_group_order() {
    use supercayley::perm::factorial;
    for host in [
        SuperCayleyGraph::macro_star(3, 2).unwrap(),
        SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
        SuperCayleyGraph::macro_rotator(2, 3).unwrap(),
    ] {
        let k = host.degree_k();
        for g in host.generators() {
            let ord = g.as_perm(k).unwrap().order();
            assert_eq!(factorial(k) % ord, 0, "{g} on {}", host.name());
        }
    }
}
